/**
 * @file
 * Dialect probe: learn a DBMS's feature matrix from scratch.
 *
 * Demonstrates the adaptive generator's learning loop in isolation: no
 * oracle, just statement generation plus validity feedback. After the
 * probing budget the inferred support table is printed and persisted to
 * a file that future runs can load (the paper's step 4 -> step 1
 * persistence), skipping the learning phase entirely.
 *
 *   ./dialect_probe [dialect] [statements] [state-file]
 *   ./dialect_probe --replay repro.sql
 *
 * --replay re-runs a bug dossier's repro.sql (core/dossier.h) on a
 * fresh connection: exit 0 when the oracle still flags the bug, 1 when
 * it does not reproduce — the verification hook trace_smoke.sh and the
 * dossier integration test rely on.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/baseline.h"
#include "core/dossier.h"
#include "core/feedback.h"
#include "core/generator.h"
#include "dialect/connection.h"
#include "util/persist.h"

using namespace sqlpp;

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--replay") == 0) {
        if (argc < 3) {
            std::fprintf(stderr,
                         "usage: dialect_probe --replay repro.sql\n");
            return 2;
        }
        std::string details;
        bool reproduced = replayReproFile(argv[2], &details);
        std::printf("%s: %s\n", argv[2],
                    reproduced ? "bug reproduced" : "did NOT reproduce");
        if (!details.empty())
            std::printf("  %s\n", details.c_str());
        return reproduced ? 0 : 1;
    }
    std::string dialect = argc > 1 ? argv[1] : "cratedb-like";
    size_t budget = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4000;
    std::string state_file = argc > 3 ? argv[3] : "";

    const DialectProfile *profile = findDialect(dialect);
    if (profile == nullptr) {
        std::fprintf(stderr, "unknown dialect '%s'\n", dialect.c_str());
        return 1;
    }

    FeatureRegistry registry;
    FeedbackConfig feedback_config;
    feedback_config.updateInterval = 250;
    feedback_config.ddlFailureLimit = 8;
    FeedbackTracker tracker(feedback_config);

    // Optionally resume from persisted state.
    if (!state_file.empty()) {
        KvStore store;
        if (store.load(state_file).isOk()) {
            tracker.load(registry, store);
            std::printf("loaded %zu persisted entries from %s\n",
                        store.size(), state_file.c_str());
        }
    }

    FeedbackGate gate(tracker);
    SchemaModel model;
    GeneratorConfig generator_config;
    generator_config.seed = 7;
    AdaptiveGenerator generator(generator_config, registry, gate, model);
    Connection connection(*profile);

    std::printf("== probing %s with %zu statements ==\n",
                dialect.c_str(), budget);
    size_t ok_count = 0;
    for (size_t i = 0; i < budget; ++i) {
        bool setup_phase = i < budget / 5 || model.tableCount(false) == 0;
        GeneratedStatement stmt = setup_phase
                                      ? generator.generateSetupStatement()
                                      : generator.generateSelect();
        bool ok = connection.executeAdapted(stmt.text).isOk();
        tracker.record(stmt.features, ok, stmt.isQuery);
        generator.noteExecution(stmt, ok);
        ok_count += ok ? 1 : 0;
    }
    tracker.updateNow();
    std::printf("overall validity: %.1f%%\n\n",
                100.0 * ok_count / budget);

    // Compare the learned verdicts against the ground-truth matrix.
    ProfileGate truth(*profile, registry);
    std::printf("%-28s %8s %8s %10s %s\n", "feature", "N", "y",
                "est.prob", "verdict");
    size_t agree = 0, total = 0;
    for (FeatureId id = 0; id < registry.size(); ++id) {
        const FeatureStats &stat = tracker.stats(id);
        if (stat.executions < 5)
            continue;
        bool learned_ok = tracker.shouldGenerate(id);
        bool truly_ok = truth.allow(id);
        ++total;
        agree += (learned_ok == truly_ok) ? 1 : 0;
        if (!learned_ok || !truly_ok) {
            std::printf("%-28s %8llu %8llu %9.3f%% %s%s\n",
                        registry.name(id).c_str(),
                        (unsigned long long)stat.executions,
                        (unsigned long long)stat.successes,
                        100.0 * tracker.estimatedProbability(id),
                        learned_ok ? "supported" : "UNSUPPORTED",
                        learned_ok == truly_ok ? "" : "   (differs)");
        }
    }
    std::printf("\nlearned/ground-truth agreement: %zu of %zu "
                "exercised features\n",
                agree, total);

    if (!state_file.empty()) {
        KvStore store;
        tracker.save(registry, store);
        if (store.save(state_file).isOk()) {
            std::printf("persisted %zu entries to %s\n", store.size(),
                        state_file.c_str());
        }
    }
    return 0;
}
