/**
 * @file
 * Quickstart: test one DBMS dialect with the TLP oracle.
 *
 * This is the paper's headline workflow compressed to a page: pick a
 * target (here the sqlite-like dialect, which carries the two bugs the
 * paper dissects in Listings 3 and 4), run an adaptive campaign, and
 * print the prioritized bug reports.
 *
 *   ./quickstart [dialect] [checks]
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/campaign.h"

using namespace sqlpp;

int
main(int argc, char **argv)
{
    std::string dialect = argc > 1 ? argv[1] : "sqlite-like";
    size_t checks = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 800;

    if (findDialect(dialect) == nullptr) {
        std::fprintf(stderr, "unknown dialect '%s'; available:\n",
                     dialect.c_str());
        for (const DialectProfile &profile : allDialectProfiles())
            std::fprintf(stderr, "  %s\n", profile.name.c_str());
        return 1;
    }

    CampaignConfig config;
    config.dialect = dialect;
    config.seed = 42;
    config.checks = checks;
    config.oracles = {"TLP", "NOREC"};
    config.reduce = true;
    config.feedback.updateInterval = 200;

    std::printf("== SQLancer++ quickstart ==\n");
    std::printf("target dialect : %s\n", dialect.c_str());
    std::printf("oracle checks  : %zu (TLP + NoREC)\n\n", checks);

    CampaignRunner runner(config);
    CampaignStats stats = runner.run();

    std::printf("setup statements : %llu (%.0f%% valid)\n",
                (unsigned long long)stats.setupGenerated,
                100.0 * stats.setupValidityRate());
    std::printf("oracle checks    : %llu (%.0f%% valid)\n",
                (unsigned long long)stats.checksAttempted,
                100.0 * stats.validityRate());
    std::printf("bug-inducing     : %llu test cases\n",
                (unsigned long long)stats.bugsDetected);
    std::printf("prioritized      : %zu reports\n",
                stats.prioritizedBugs.size());
    std::printf("unique plans     : %zu\n\n",
                stats.planFingerprints.size());

    const DialectProfile *profile = findDialect(dialect);
    size_t shown = 0;
    for (const BugCase &bug : stats.prioritizedBugs) {
        if (shown++ >= 5) {
            std::printf("... (%zu more prioritized reports)\n",
                        stats.prioritizedBugs.size() - 5);
            break;
        }
        std::printf("--- bug report #%zu (%s oracle) ---\n", shown,
                    bug.oracle.c_str());
        for (const std::string &statement : bug.setup)
            std::printf("  %s;\n", statement.c_str());
        std::printf("  -- base     : %s\n", bug.baseText.c_str());
        std::printf("  -- predicate: %s\n", bug.predicateText.c_str());
        std::printf("  -- evidence : %s\n", bug.details.c_str());
        auto fault = CampaignRunner::attributeFault(*profile, bug);
        if (fault.has_value()) {
            std::printf("  -- ground truth: %s (%s)\n",
                        faultName(*fault), faultDescription(*fault));
        }
        std::printf("\n");
    }
    if (stats.prioritizedBugs.empty())
        std::printf("no logic bugs found -- try more checks.\n");
    return 0;
}
