/**
 * @file
 * Bug hunt: the Table 2 workflow — run the platform against every
 * campaign dialect, prioritize, attribute, and summarize.
 *
 * The 17 dialects are sharded across a worker pool (the paper's
 * concurrent-fleet setup); results are merged deterministically, so
 * the table below is identical for any --workers value.
 *
 *   ./bug_hunt [checks-per-dialect] [--workers N]
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/scheduler.h"

using namespace sqlpp;

int
main(int argc, char **argv)
{
    size_t checks = 600;
    size_t workers = 1;
    for (int arg = 1; arg < argc; ++arg) {
        if (std::strcmp(argv[arg], "--workers") == 0 &&
            arg + 1 < argc) {
            workers = std::strtoul(argv[++arg], nullptr, 10);
        } else {
            checks = std::strtoul(argv[arg], nullptr, 10);
        }
    }

    SchedulerConfig config;
    config.mode = ScheduleMode::ShardDialects;
    config.workers = workers;
    config.campaign.seed = 1234;
    config.campaign.checks = checks;
    config.campaign.oracles = {"TLP", "NOREC"};
    config.campaign.feedback.updateInterval = 200;

    std::printf("== SQLancer++ bug-finding campaign across %zu "
                "dialects (%zu worker%s) ==\n\n",
                campaignDialects().size(), workers,
                workers == 1 ? "" : "s");
    std::printf("%-16s %10s %9s %12s %8s %7s\n", "dialect", "detected",
                "priorit.", "unique-bugs", "validity", "plans");

    CampaignScheduler scheduler(config);
    ScheduleReport report = scheduler.run();

    size_t total_prioritized = 0;
    size_t total_unique = 0;
    for (const ShardOutcome &shard : report.shards) {
        const DialectProfile *profile = findDialect(shard.dialect);
        size_t unique = CampaignRunner::countUniqueBugs(
            *profile, shard.stats.prioritizedBugs);
        total_prioritized += shard.stats.prioritizedBugs.size();
        total_unique += unique;
        std::printf("%-16s %10llu %9zu %12zu %7.1f%% %7zu\n",
                    shard.dialect.c_str(),
                    (unsigned long long)shard.stats.bugsDetected,
                    shard.stats.prioritizedBugs.size(), unique,
                    100.0 * shard.stats.validityRate(),
                    shard.stats.planFingerprints.size());
    }
    std::printf("\ntotal prioritized reports: %zu, distinct underlying "
                "bugs: %zu\n",
                total_prioritized, total_unique);
    std::printf("queue drained in %.2f s (%.0f checks/s end to end)\n",
                report.queueDrainSeconds, report.checksPerSecond());
    std::printf("(ground truth: every campaign dialect ships a fixed "
                "fault set; see src/engine/faults.h)\n");
    return 0;
}
