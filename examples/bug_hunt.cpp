/**
 * @file
 * Bug hunt: the Table 2 workflow — run the platform against every
 * campaign dialect, prioritize, attribute, and summarize.
 *
 * The 17 dialects are sharded across a worker pool (the paper's
 * concurrent-fleet setup); results are merged deterministically, so
 * the table below is identical for any --workers value.
 *
 *   ./bug_hunt [checks-per-dialect] [--workers N]
 *              [--oracles tlp,norec,pqs,eet,iso]
 *              [--guidance off|ucb|thompson]
 *              [--checkpoint FILE] [--resume]
 *              [--shard-deadline SEC]
 *              [--max-steps N] [--max-rows N]
 *              [--max-intermediate-rows N]
 *              [--metrics-out FILE] [--metrics-summary]
 *              [--metrics-timings]
 *              [--trace-out FILE] [--dossier-dir DIR]
 *              [--curve-interval N] [--log-level LEVEL]
 *              [--status-port N] [--progress SEC]
 *
 * --oracles picks the logic-bug oracles run per query shape
 * (comma-separated, case-insensitive; default tlp,norec). Adding pqs
 * enables the pivot-containment oracle, which catches row-loss faults
 * the multiset-equality oracles cannot; adding eet enables the
 * equivalent-expression oracle, whose rewrite wrappers reach planner
 * and evaluator paths no WHERE-based check steers onto; adding iso
 * enables the isolation oracle, which runs interleaved multi-session
 * transaction schedules against a serial-order witness and is the
 * only oracle that can see isolation faults (single-session no-ops).
 *
 * --guidance turns on search-guided generation: generator choice
 * points become deterministic bandit arms (ucb or thompson) rewarded
 * by new plan fingerprints and coverage probes, so the statement
 * budget chases novelty instead of revisiting known plans. Guided
 * campaigns remain bit-identical for any --workers value and across
 * --resume.
 *
 * --checkpoint rewrites FILE atomically after every finished shard;
 * rerunning with --resume skips finished shards and merges to stats
 * bit-identical to an uninterrupted run. The budget flags bound every
 * statement's engine work; budget-truncated statements count as
 * resource errors, never as bugs.
 *
 * --metrics-out writes the campaign metrics as the stable
 * sqlpp.metrics.v1 JSON document (byte-identical across runs for a
 * fixed seed with --workers 1); --metrics-timings additionally
 * includes wall-clock timer values, which vary run to run.
 * --metrics-summary prints the human-readable table on stdout.
 *
 * --trace-out writes the campaign flight recorder as sqlpp.trace.v1
 * JSONL (logical ticks only — byte-identical across runs for a fixed
 * seed with --workers 1; scripts/trace_to_chrome.py renders it in
 * Perfetto). --dossier-dir writes one forensic dossier directory per
 * prioritized bug (repro.sql + dossier/feedback/metrics/events; the
 * dossier set is identical for any --workers value and across
 * --resume). --curve-interval N samples the validity learning curve
 * every N checks. --log-level quiet|error|warn|info|debug sets the
 * verbosity of campaign/scheduler progress lines on stderr.
 *
 * --status-port N serves live campaign introspection on
 * 127.0.0.1:N (0 = kernel-assigned; the bound port is printed):
 * GET /status returns the sqlpp.status.v1 JSON snapshot (per-shard
 * progress, stall diagnosis), GET /metrics the Prometheus text
 * exposition, GET /trace?since=T the flight-recorder events with
 * tick > T as NDJSON. Polling is read-only: merged stats,
 * checkpoints, and dossiers are bit-identical with or without it.
 * --progress SEC prints a one-line progress report (checks/s,
 * validity, bugs, ETA, stalled shards) every SEC seconds, rendered
 * from the same snapshot /status serves.
 */
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <thread>

#include "core/progress.h"
#include "core/scheduler.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/status_server.h"
#include "util/strutil.h"
#include "util/trace.h"

using namespace sqlpp;

int
main(int argc, char **argv)
{
    size_t checks = 600;
    size_t workers = 1;
    std::string oracles_flag = "tlp,norec";
    std::string checkpoint_path;
    bool resume = false;
    double shard_deadline = 0.0;
    std::string metrics_out;
    bool metrics_summary = false;
    bool metrics_timings = false;
    std::string trace_out;
    std::string dossier_dir;
    size_t curve_interval = 0;
    StepBudget budget;
    GuidanceMode guidance = GuidanceMode::Off;
    long status_port = -1;
    double progress_interval = 0.0;
    for (int arg = 1; arg < argc; ++arg) {
        auto flagValue = [&](const char *flag, const char **value) {
            if (std::strcmp(argv[arg], flag) != 0 || arg + 1 >= argc)
                return false;
            *value = argv[++arg];
            return true;
        };
        const char *value = nullptr;
        if (flagValue("--workers", &value)) {
            workers = std::strtoul(value, nullptr, 10);
        } else if (flagValue("--oracles", &value)) {
            oracles_flag = value;
        } else if (flagValue("--guidance", &value)) {
            if (!parseGuidanceMode(value, guidance)) {
                std::fprintf(stderr,
                             "unknown guidance mode '%s' (known: off, "
                             "ucb, thompson)\n",
                             value);
                return 1;
            }
        } else if (flagValue("--checkpoint", &value)) {
            checkpoint_path = value;
        } else if (std::strcmp(argv[arg], "--resume") == 0) {
            resume = true;
        } else if (flagValue("--shard-deadline", &value)) {
            shard_deadline = std::strtod(value, nullptr);
        } else if (flagValue("--metrics-out", &value)) {
            metrics_out = value;
        } else if (std::strcmp(argv[arg], "--metrics-summary") == 0) {
            metrics_summary = true;
        } else if (std::strcmp(argv[arg], "--metrics-timings") == 0) {
            metrics_timings = true;
        } else if (flagValue("--trace-out", &value)) {
            trace_out = value;
        } else if (flagValue("--dossier-dir", &value)) {
            dossier_dir = value;
        } else if (flagValue("--curve-interval", &value)) {
            curve_interval = std::strtoul(value, nullptr, 10);
        } else if (flagValue("--status-port", &value)) {
            status_port = std::strtol(value, nullptr, 10);
            if (status_port < 0 || status_port > 65535) {
                std::fprintf(stderr,
                             "--status-port must be 0..65535\n");
                return 1;
            }
        } else if (flagValue("--progress", &value)) {
            progress_interval = std::strtod(value, nullptr);
        } else if (flagValue("--log-level", &value)) {
            auto level = logLevelFromName(value);
            if (!level) {
                std::fprintf(stderr,
                             "unknown log level '%s' (known: quiet, "
                             "error, warn, info, debug)\n",
                             value);
                return 1;
            }
            setLogLevel(*level);
        } else if (flagValue("--max-steps", &value)) {
            budget.maxSteps = std::strtoull(value, nullptr, 10);
        } else if (flagValue("--max-rows", &value)) {
            budget.maxRows = std::strtoull(value, nullptr, 10);
        } else if (flagValue("--max-intermediate-rows", &value)) {
            budget.maxIntermediateRows =
                std::strtoull(value, nullptr, 10);
        } else {
            checks = std::strtoul(argv[arg], nullptr, 10);
        }
    }
    if (resume && checkpoint_path.empty()) {
        std::fprintf(stderr,
                     "--resume requires --checkpoint <file>\n");
        return 1;
    }
    std::vector<std::string> oracles;
    for (const std::string &name : split(oracles_flag, ',')) {
        if (name.empty())
            continue;
        if (makeOracle(name) == nullptr) {
            std::fprintf(stderr,
                         "unknown oracle '%s' (known: tlp, norec, "
                         "pqs, eet, iso)\n",
                         name.c_str());
            return 1;
        }
        oracles.push_back(toUpper(name));
    }
    if (oracles.empty()) {
        std::fprintf(stderr, "--oracles needs at least one oracle\n");
        return 1;
    }

    SchedulerConfig config;
    config.mode = ScheduleMode::ShardDialects;
    config.workers = workers;
    config.checkpointPath = checkpoint_path;
    config.resume = resume;
    config.shardDeadlineSeconds = shard_deadline;
    config.campaign.seed = 1234;
    config.campaign.checks = checks;
    config.campaign.oracles = oracles;
    config.campaign.feedback.updateInterval = 200;
    config.campaign.budget = budget;
    config.campaign.curveInterval = curve_interval;
    config.campaign.guidance.mode = guidance;
    config.dossierDir = dossier_dir;

    std::printf("== SQLancer++ bug-finding campaign across %zu "
                "dialects (%zu worker%s) ==\n\n",
                campaignDialects().size(), workers,
                workers == 1 ? "" : "s");
    if (guidance != GuidanceMode::Off)
        std::printf("guided generation: %s (novelty-rewarded bandit "
                    "over generator choice points)\n\n",
                    guidanceModeName(guidance));
    std::printf("%-16s %10s %9s %12s %8s %7s\n", "dialect", "detected",
                "priorit.", "unique-bugs", "validity", "plans");

    // Pre-register the full metric universe so the exported document
    // has the same shape no matter which code paths this run hit.
    declarePlatformMetrics();
    MetricsRegistry::instance().reset();
    TraceRecorder::instance().reset();

    // Live introspection side door. Handlers only render read-only
    // snapshots (progress board atomics, metric/trace lane reads), so
    // serving them cannot perturb the campaign.
    StatusServer status_server;
    if (status_port >= 0) {
        status_server.handle("/status", [](const HttpRequest &) {
            HttpResponse response;
            response.body = renderStatusJson(
                ProgressBoard::instance().snapshot());
            return response;
        });
        status_server.handle("/metrics", [](const HttpRequest &) {
            HttpResponse response;
            response.contentType = "text/plain; version=0.0.4";
            response.body = exportMetricsPrometheus();
            return response;
        });
        status_server.handle("/trace", [](const HttpRequest &request) {
            HttpResponse response;
            response.contentType = "application/x-ndjson";
            response.body = exportTraceDeltaJsonl(
                request.queryU64("since", 0));
            return response;
        });
        Status started =
            status_server.start(static_cast<uint16_t>(status_port));
        if (started.isOk()) {
            std::printf("status: serving on http://127.0.0.1:%u "
                        "(/status /metrics /trace?since=N)\n",
                        status_server.port());
            std::fflush(stdout);
        } else {
            std::fprintf(stderr, "status: disabled (%s)\n",
                         started.toString().c_str());
        }
    }

    // Periodic progress line, rendered from the same snapshot /status
    // serves. The printer thread only reads the board.
    std::mutex progress_mutex;
    std::condition_variable progress_cv;
    bool progress_done = false;
    std::thread progress_thread;
    if (progress_interval > 0.0) {
        progress_thread = std::thread([&] {
            std::unique_lock<std::mutex> lock(progress_mutex);
            for (;;) {
                progress_cv.wait_for(
                    lock,
                    std::chrono::duration<double>(progress_interval),
                    [&] { return progress_done; });
                if (progress_done)
                    return;
                std::printf("%s\n",
                            renderProgressLine(
                                ProgressBoard::instance().snapshot())
                                .c_str());
                std::fflush(stdout);
            }
        });
    }

    CampaignScheduler scheduler(config);
    ScheduleReport report = scheduler.run();

    if (progress_thread.joinable()) {
        {
            std::lock_guard<std::mutex> lock(progress_mutex);
            progress_done = true;
        }
        progress_cv.notify_all();
        progress_thread.join();
        // One final line so short campaigns always report completion.
        std::printf("%s\n",
                    renderProgressLine(
                        ProgressBoard::instance().snapshot())
                        .c_str());
    }

    size_t total_prioritized = 0;
    size_t total_unique = 0;
    for (const ShardOutcome &shard : report.shards) {
        const DialectProfile *profile = findDialect(shard.dialect);
        size_t unique = CampaignRunner::countUniqueBugs(
            *profile, shard.stats.prioritizedBugs);
        total_prioritized += shard.stats.prioritizedBugs.size();
        total_unique += unique;
        std::printf("%-16s %10llu %9zu %12zu %7.1f%% %7zu%s\n",
                    shard.dialect.c_str(),
                    (unsigned long long)shard.stats.bugsDetected,
                    shard.stats.prioritizedBugs.size(), unique,
                    100.0 * shard.stats.validityRate(),
                    shard.stats.planFingerprints.size(),
                    shard.fromCheckpoint ? "  (resumed)" : "");
    }
    std::printf("\ntotal prioritized reports: %zu, distinct underlying "
                "bugs: %zu\n",
                total_prioritized, total_unique);
    if (!checkpoint_path.empty())
        std::printf("checkpoint: %s (%zu shard%s restored from a "
                    "previous run)\n",
                    checkpoint_path.c_str(),
                    report.shardsFromCheckpoint,
                    report.shardsFromCheckpoint == 1 ? "" : "s");
    if (report.merged.resourceErrors > 0 ||
        report.merged.shardsAbandoned > 0)
        std::printf("budget/watchdog: %llu statements cut short by the "
                    "execution budget, %llu shard%s abandoned at the "
                    "deadline\n",
                    (unsigned long long)report.merged.resourceErrors,
                    (unsigned long long)report.merged.shardsAbandoned,
                    report.merged.shardsAbandoned == 1 ? "" : "s");
    std::printf("queue drained in %.2f s (%.0f checks/s end to end)\n",
                report.queueDrainSeconds, report.checksPerSecond());
    std::printf("(ground truth: every campaign dialect ships a fixed "
                "fault set; see src/engine/faults.h)\n");
    if (!metrics_out.empty()) {
        MetricsJsonOptions options;
        options.includeTimings = metrics_timings;
        std::ofstream out(metrics_out, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "cannot write metrics to %s\n",
                         metrics_out.c_str());
            return 1;
        }
        out << exportMetricsJson(options);
        std::printf("metrics: %s\n", metrics_out.c_str());
    }
    if (metrics_summary)
        std::fputs(metricsSummaryTable().c_str(), stdout);
    if (!trace_out.empty()) {
        std::ofstream out(trace_out, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "cannot write trace to %s\n",
                         trace_out.c_str());
            return 1;
        }
        out << exportTraceJsonl();
        std::printf("trace: %s\n", trace_out.c_str());
        uint64_t dropped = traceDroppedTotal();
        if (dropped > 0)
            std::printf("warning: %llu trace events dropped (ring "
                        "overwrite; the export holds only each lane's "
                        "newest %zu events)\n",
                        (unsigned long long)dropped,
                        TraceRecorder::kRingCapacity);
    }
    if (!dossier_dir.empty())
        std::printf("dossiers: %zu written under %s\n",
                    report.dossiersWritten, dossier_dir.c_str());
    status_server.stop();
    return 0;
}
