/**
 * @file
 * Bug hunt: the Table 2 workflow — run the platform against every
 * campaign dialect, prioritize, attribute, and summarize.
 *
 *   ./bug_hunt [checks-per-dialect]
 */
#include <cstdio>
#include <cstdlib>

#include "core/campaign.h"

using namespace sqlpp;

int
main(int argc, char **argv)
{
    size_t checks = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 600;

    std::printf("== SQLancer++ bug-finding campaign across %zu "
                "dialects ==\n\n",
                campaignDialects().size());
    std::printf("%-16s %10s %9s %12s %8s %7s\n", "dialect", "detected",
                "priorit.", "unique-bugs", "validity", "plans");

    size_t total_prioritized = 0;
    size_t total_unique = 0;
    for (const DialectProfile *profile : campaignDialects()) {
        CampaignConfig config;
        config.dialect = profile->name;
        config.seed = 1234;
        config.checks = checks;
        config.oracles = {"TLP", "NOREC"};
        config.feedback.updateInterval = 200;
        CampaignRunner runner(config);
        CampaignStats stats = runner.run();
        size_t unique = CampaignRunner::countUniqueBugs(
            *profile, stats.prioritizedBugs);
        total_prioritized += stats.prioritizedBugs.size();
        total_unique += unique;
        std::printf("%-16s %10llu %9zu %12zu %7.1f%% %7zu\n",
                    profile->name.c_str(),
                    (unsigned long long)stats.bugsDetected,
                    stats.prioritizedBugs.size(), unique,
                    100.0 * stats.validityRate(),
                    stats.planFingerprints.size());
    }
    std::printf("\ntotal prioritized reports: %zu, distinct underlying "
                "bugs: %zu\n",
                total_prioritized, total_unique);
    std::printf("(ground truth: every campaign dialect ships a fixed "
                "fault set; see src/engine/faults.h)\n");
    return 0;
}
