file(REMOVE_RECURSE
  "CMakeFiles/table1_features.dir/table1_features.cc.o"
  "CMakeFiles/table1_features.dir/table1_features.cc.o.d"
  "table1_features"
  "table1_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
