# Empty compiler generated dependencies file for table1_features.
# This may be replaced when dependencies are built.
