# Empty compiler generated dependencies file for fig7_cross_dialect.
# This may be replaced when dependencies are built.
