file(REMOVE_RECURSE
  "CMakeFiles/fig7_cross_dialect.dir/fig7_cross_dialect.cc.o"
  "CMakeFiles/fig7_cross_dialect.dir/fig7_cross_dialect.cc.o.d"
  "fig7_cross_dialect"
  "fig7_cross_dialect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_cross_dialect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
