# Empty compiler generated dependencies file for table5_prioritization.
# This may be replaced when dependencies are built.
