file(REMOVE_RECURSE
  "CMakeFiles/table5_prioritization.dir/table5_prioritization.cc.o"
  "CMakeFiles/table5_prioritization.dir/table5_prioritization.cc.o.d"
  "table5_prioritization"
  "table5_prioritization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_prioritization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
