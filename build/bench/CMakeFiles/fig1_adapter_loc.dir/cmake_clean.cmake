file(REMOVE_RECURSE
  "CMakeFiles/fig1_adapter_loc.dir/fig1_adapter_loc.cc.o"
  "CMakeFiles/fig1_adapter_loc.dir/fig1_adapter_loc.cc.o.d"
  "fig1_adapter_loc"
  "fig1_adapter_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_adapter_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
