# Empty dependencies file for fig1_adapter_loc.
# This may be replaced when dependencies are built.
