file(REMOVE_RECURSE
  "CMakeFiles/table2_campaign.dir/table2_campaign.cc.o"
  "CMakeFiles/table2_campaign.dir/table2_campaign.cc.o.d"
  "table2_campaign"
  "table2_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
