# Empty dependencies file for table2_campaign.
# This may be replaced when dependencies are built.
