# Empty dependencies file for fig6_feature_venn.
# This may be replaced when dependencies are built.
