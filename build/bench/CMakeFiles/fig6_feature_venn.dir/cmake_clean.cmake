file(REMOVE_RECURSE
  "CMakeFiles/fig6_feature_venn.dir/fig6_feature_venn.cc.o"
  "CMakeFiles/fig6_feature_venn.dir/fig6_feature_venn.cc.o.d"
  "fig6_feature_venn"
  "fig6_feature_venn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_feature_venn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
