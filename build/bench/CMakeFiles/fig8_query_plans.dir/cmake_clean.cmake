file(REMOVE_RECURSE
  "CMakeFiles/fig8_query_plans.dir/fig8_query_plans.cc.o"
  "CMakeFiles/fig8_query_plans.dir/fig8_query_plans.cc.o.d"
  "fig8_query_plans"
  "fig8_query_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_query_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
