# Empty dependencies file for fig8_query_plans.
# This may be replaced when dependencies are built.
