file(REMOVE_RECURSE
  "CMakeFiles/table4_validity.dir/table4_validity.cc.o"
  "CMakeFiles/table4_validity.dir/table4_validity.cc.o.d"
  "table4_validity"
  "table4_validity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_validity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
