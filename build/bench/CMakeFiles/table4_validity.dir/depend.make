# Empty dependencies file for table4_validity.
# This may be replaced when dependencies are built.
