# Empty dependencies file for table3_coverage.
# This may be replaced when dependencies are built.
