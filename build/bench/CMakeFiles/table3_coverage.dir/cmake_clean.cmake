file(REMOVE_RECURSE
  "CMakeFiles/table3_coverage.dir/table3_coverage.cc.o"
  "CMakeFiles/table3_coverage.dir/table3_coverage.cc.o.d"
  "table3_coverage"
  "table3_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
