# Empty dependencies file for sqlpp_engine.
# This may be replaced when dependencies are built.
