file(REMOVE_RECURSE
  "CMakeFiles/sqlpp_engine.dir/catalog.cc.o"
  "CMakeFiles/sqlpp_engine.dir/catalog.cc.o.d"
  "CMakeFiles/sqlpp_engine.dir/database.cc.o"
  "CMakeFiles/sqlpp_engine.dir/database.cc.o.d"
  "CMakeFiles/sqlpp_engine.dir/eval.cc.o"
  "CMakeFiles/sqlpp_engine.dir/eval.cc.o.d"
  "CMakeFiles/sqlpp_engine.dir/executor.cc.o"
  "CMakeFiles/sqlpp_engine.dir/executor.cc.o.d"
  "CMakeFiles/sqlpp_engine.dir/faults.cc.o"
  "CMakeFiles/sqlpp_engine.dir/faults.cc.o.d"
  "CMakeFiles/sqlpp_engine.dir/functions.cc.o"
  "CMakeFiles/sqlpp_engine.dir/functions.cc.o.d"
  "CMakeFiles/sqlpp_engine.dir/typecheck.cc.o"
  "CMakeFiles/sqlpp_engine.dir/typecheck.cc.o.d"
  "libsqlpp_engine.a"
  "libsqlpp_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlpp_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
