file(REMOVE_RECURSE
  "libsqlpp_engine.a"
)
