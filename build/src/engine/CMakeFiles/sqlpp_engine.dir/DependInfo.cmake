
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/catalog.cc" "src/engine/CMakeFiles/sqlpp_engine.dir/catalog.cc.o" "gcc" "src/engine/CMakeFiles/sqlpp_engine.dir/catalog.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/engine/CMakeFiles/sqlpp_engine.dir/database.cc.o" "gcc" "src/engine/CMakeFiles/sqlpp_engine.dir/database.cc.o.d"
  "/root/repo/src/engine/eval.cc" "src/engine/CMakeFiles/sqlpp_engine.dir/eval.cc.o" "gcc" "src/engine/CMakeFiles/sqlpp_engine.dir/eval.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/engine/CMakeFiles/sqlpp_engine.dir/executor.cc.o" "gcc" "src/engine/CMakeFiles/sqlpp_engine.dir/executor.cc.o.d"
  "/root/repo/src/engine/faults.cc" "src/engine/CMakeFiles/sqlpp_engine.dir/faults.cc.o" "gcc" "src/engine/CMakeFiles/sqlpp_engine.dir/faults.cc.o.d"
  "/root/repo/src/engine/functions.cc" "src/engine/CMakeFiles/sqlpp_engine.dir/functions.cc.o" "gcc" "src/engine/CMakeFiles/sqlpp_engine.dir/functions.cc.o.d"
  "/root/repo/src/engine/typecheck.cc" "src/engine/CMakeFiles/sqlpp_engine.dir/typecheck.cc.o" "gcc" "src/engine/CMakeFiles/sqlpp_engine.dir/typecheck.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parser/CMakeFiles/sqlpp_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/sqlir/CMakeFiles/sqlpp_sqlir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sqlpp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
