file(REMOVE_RECURSE
  "CMakeFiles/sqlpp_parser.dir/lexer.cc.o"
  "CMakeFiles/sqlpp_parser.dir/lexer.cc.o.d"
  "CMakeFiles/sqlpp_parser.dir/parser.cc.o"
  "CMakeFiles/sqlpp_parser.dir/parser.cc.o.d"
  "libsqlpp_parser.a"
  "libsqlpp_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlpp_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
