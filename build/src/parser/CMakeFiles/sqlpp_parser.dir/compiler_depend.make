# Empty compiler generated dependencies file for sqlpp_parser.
# This may be replaced when dependencies are built.
