file(REMOVE_RECURSE
  "libsqlpp_parser.a"
)
