file(REMOVE_RECURSE
  "CMakeFiles/sqlpp_dialect.dir/connection.cc.o"
  "CMakeFiles/sqlpp_dialect.dir/connection.cc.o.d"
  "CMakeFiles/sqlpp_dialect.dir/profile.cc.o"
  "CMakeFiles/sqlpp_dialect.dir/profile.cc.o.d"
  "CMakeFiles/sqlpp_dialect.dir/profiles.cc.o"
  "CMakeFiles/sqlpp_dialect.dir/profiles.cc.o.d"
  "libsqlpp_dialect.a"
  "libsqlpp_dialect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlpp_dialect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
