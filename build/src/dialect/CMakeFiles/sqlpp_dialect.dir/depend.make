# Empty dependencies file for sqlpp_dialect.
# This may be replaced when dependencies are built.
