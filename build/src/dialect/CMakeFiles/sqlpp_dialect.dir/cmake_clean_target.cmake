file(REMOVE_RECURSE
  "libsqlpp_dialect.a"
)
