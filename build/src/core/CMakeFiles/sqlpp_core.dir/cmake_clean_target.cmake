file(REMOVE_RECURSE
  "libsqlpp_core.a"
)
