# Empty compiler generated dependencies file for sqlpp_core.
# This may be replaced when dependencies are built.
