
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baseline.cc" "src/core/CMakeFiles/sqlpp_core.dir/baseline.cc.o" "gcc" "src/core/CMakeFiles/sqlpp_core.dir/baseline.cc.o.d"
  "/root/repo/src/core/campaign.cc" "src/core/CMakeFiles/sqlpp_core.dir/campaign.cc.o" "gcc" "src/core/CMakeFiles/sqlpp_core.dir/campaign.cc.o.d"
  "/root/repo/src/core/feature.cc" "src/core/CMakeFiles/sqlpp_core.dir/feature.cc.o" "gcc" "src/core/CMakeFiles/sqlpp_core.dir/feature.cc.o.d"
  "/root/repo/src/core/feedback.cc" "src/core/CMakeFiles/sqlpp_core.dir/feedback.cc.o" "gcc" "src/core/CMakeFiles/sqlpp_core.dir/feedback.cc.o.d"
  "/root/repo/src/core/generator.cc" "src/core/CMakeFiles/sqlpp_core.dir/generator.cc.o" "gcc" "src/core/CMakeFiles/sqlpp_core.dir/generator.cc.o.d"
  "/root/repo/src/core/oracle.cc" "src/core/CMakeFiles/sqlpp_core.dir/oracle.cc.o" "gcc" "src/core/CMakeFiles/sqlpp_core.dir/oracle.cc.o.d"
  "/root/repo/src/core/prioritizer.cc" "src/core/CMakeFiles/sqlpp_core.dir/prioritizer.cc.o" "gcc" "src/core/CMakeFiles/sqlpp_core.dir/prioritizer.cc.o.d"
  "/root/repo/src/core/reducer.cc" "src/core/CMakeFiles/sqlpp_core.dir/reducer.cc.o" "gcc" "src/core/CMakeFiles/sqlpp_core.dir/reducer.cc.o.d"
  "/root/repo/src/core/schema_model.cc" "src/core/CMakeFiles/sqlpp_core.dir/schema_model.cc.o" "gcc" "src/core/CMakeFiles/sqlpp_core.dir/schema_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dialect/CMakeFiles/sqlpp_dialect.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/sqlpp_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/sqlpp_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/sqlir/CMakeFiles/sqlpp_sqlir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sqlpp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
