file(REMOVE_RECURSE
  "CMakeFiles/sqlpp_core.dir/baseline.cc.o"
  "CMakeFiles/sqlpp_core.dir/baseline.cc.o.d"
  "CMakeFiles/sqlpp_core.dir/campaign.cc.o"
  "CMakeFiles/sqlpp_core.dir/campaign.cc.o.d"
  "CMakeFiles/sqlpp_core.dir/feature.cc.o"
  "CMakeFiles/sqlpp_core.dir/feature.cc.o.d"
  "CMakeFiles/sqlpp_core.dir/feedback.cc.o"
  "CMakeFiles/sqlpp_core.dir/feedback.cc.o.d"
  "CMakeFiles/sqlpp_core.dir/generator.cc.o"
  "CMakeFiles/sqlpp_core.dir/generator.cc.o.d"
  "CMakeFiles/sqlpp_core.dir/oracle.cc.o"
  "CMakeFiles/sqlpp_core.dir/oracle.cc.o.d"
  "CMakeFiles/sqlpp_core.dir/prioritizer.cc.o"
  "CMakeFiles/sqlpp_core.dir/prioritizer.cc.o.d"
  "CMakeFiles/sqlpp_core.dir/reducer.cc.o"
  "CMakeFiles/sqlpp_core.dir/reducer.cc.o.d"
  "CMakeFiles/sqlpp_core.dir/schema_model.cc.o"
  "CMakeFiles/sqlpp_core.dir/schema_model.cc.o.d"
  "libsqlpp_core.a"
  "libsqlpp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlpp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
