file(REMOVE_RECURSE
  "CMakeFiles/sqlpp_sqlir.dir/ast.cc.o"
  "CMakeFiles/sqlpp_sqlir.dir/ast.cc.o.d"
  "CMakeFiles/sqlpp_sqlir.dir/printer.cc.o"
  "CMakeFiles/sqlpp_sqlir.dir/printer.cc.o.d"
  "CMakeFiles/sqlpp_sqlir.dir/value.cc.o"
  "CMakeFiles/sqlpp_sqlir.dir/value.cc.o.d"
  "libsqlpp_sqlir.a"
  "libsqlpp_sqlir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlpp_sqlir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
