
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sqlir/ast.cc" "src/sqlir/CMakeFiles/sqlpp_sqlir.dir/ast.cc.o" "gcc" "src/sqlir/CMakeFiles/sqlpp_sqlir.dir/ast.cc.o.d"
  "/root/repo/src/sqlir/printer.cc" "src/sqlir/CMakeFiles/sqlpp_sqlir.dir/printer.cc.o" "gcc" "src/sqlir/CMakeFiles/sqlpp_sqlir.dir/printer.cc.o.d"
  "/root/repo/src/sqlir/value.cc" "src/sqlir/CMakeFiles/sqlpp_sqlir.dir/value.cc.o" "gcc" "src/sqlir/CMakeFiles/sqlpp_sqlir.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sqlpp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
