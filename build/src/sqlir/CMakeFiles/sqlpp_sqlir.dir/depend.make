# Empty dependencies file for sqlpp_sqlir.
# This may be replaced when dependencies are built.
