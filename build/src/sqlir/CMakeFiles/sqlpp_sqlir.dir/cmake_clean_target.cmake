file(REMOVE_RECURSE
  "libsqlpp_sqlir.a"
)
