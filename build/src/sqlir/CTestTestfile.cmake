# CMake generated Testfile for 
# Source directory: /root/repo/src/sqlir
# Build directory: /root/repo/build/src/sqlir
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
