
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/coverage.cc" "src/util/CMakeFiles/sqlpp_util.dir/coverage.cc.o" "gcc" "src/util/CMakeFiles/sqlpp_util.dir/coverage.cc.o.d"
  "/root/repo/src/util/log.cc" "src/util/CMakeFiles/sqlpp_util.dir/log.cc.o" "gcc" "src/util/CMakeFiles/sqlpp_util.dir/log.cc.o.d"
  "/root/repo/src/util/persist.cc" "src/util/CMakeFiles/sqlpp_util.dir/persist.cc.o" "gcc" "src/util/CMakeFiles/sqlpp_util.dir/persist.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/util/CMakeFiles/sqlpp_util.dir/rng.cc.o" "gcc" "src/util/CMakeFiles/sqlpp_util.dir/rng.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/util/CMakeFiles/sqlpp_util.dir/stats.cc.o" "gcc" "src/util/CMakeFiles/sqlpp_util.dir/stats.cc.o.d"
  "/root/repo/src/util/status.cc" "src/util/CMakeFiles/sqlpp_util.dir/status.cc.o" "gcc" "src/util/CMakeFiles/sqlpp_util.dir/status.cc.o.d"
  "/root/repo/src/util/strutil.cc" "src/util/CMakeFiles/sqlpp_util.dir/strutil.cc.o" "gcc" "src/util/CMakeFiles/sqlpp_util.dir/strutil.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
