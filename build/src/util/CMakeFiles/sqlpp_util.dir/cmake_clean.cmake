file(REMOVE_RECURSE
  "CMakeFiles/sqlpp_util.dir/coverage.cc.o"
  "CMakeFiles/sqlpp_util.dir/coverage.cc.o.d"
  "CMakeFiles/sqlpp_util.dir/log.cc.o"
  "CMakeFiles/sqlpp_util.dir/log.cc.o.d"
  "CMakeFiles/sqlpp_util.dir/persist.cc.o"
  "CMakeFiles/sqlpp_util.dir/persist.cc.o.d"
  "CMakeFiles/sqlpp_util.dir/rng.cc.o"
  "CMakeFiles/sqlpp_util.dir/rng.cc.o.d"
  "CMakeFiles/sqlpp_util.dir/stats.cc.o"
  "CMakeFiles/sqlpp_util.dir/stats.cc.o.d"
  "CMakeFiles/sqlpp_util.dir/status.cc.o"
  "CMakeFiles/sqlpp_util.dir/status.cc.o.d"
  "CMakeFiles/sqlpp_util.dir/strutil.cc.o"
  "CMakeFiles/sqlpp_util.dir/strutil.cc.o.d"
  "libsqlpp_util.a"
  "libsqlpp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlpp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
