file(REMOVE_RECURSE
  "libsqlpp_util.a"
)
