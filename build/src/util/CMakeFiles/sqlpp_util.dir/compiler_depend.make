# Empty compiler generated dependencies file for sqlpp_util.
# This may be replaced when dependencies are built.
