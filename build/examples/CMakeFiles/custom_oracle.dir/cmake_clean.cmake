file(REMOVE_RECURSE
  "CMakeFiles/custom_oracle.dir/custom_oracle.cpp.o"
  "CMakeFiles/custom_oracle.dir/custom_oracle.cpp.o.d"
  "custom_oracle"
  "custom_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
