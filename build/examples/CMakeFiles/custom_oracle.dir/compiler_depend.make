# Empty compiler generated dependencies file for custom_oracle.
# This may be replaced when dependencies are built.
