# Empty dependencies file for dialect_probe.
# This may be replaced when dependencies are built.
