file(REMOVE_RECURSE
  "CMakeFiles/dialect_probe.dir/dialect_probe.cpp.o"
  "CMakeFiles/dialect_probe.dir/dialect_probe.cpp.o.d"
  "dialect_probe"
  "dialect_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dialect_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
