# Empty dependencies file for engine_database_test.
# This may be replaced when dependencies are built.
