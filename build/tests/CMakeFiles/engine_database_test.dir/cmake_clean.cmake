file(REMOVE_RECURSE
  "CMakeFiles/engine_database_test.dir/engine_database_test.cc.o"
  "CMakeFiles/engine_database_test.dir/engine_database_test.cc.o.d"
  "engine_database_test"
  "engine_database_test.pdb"
  "engine_database_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
