file(REMOVE_RECURSE
  "CMakeFiles/engine_eval_test.dir/engine_eval_test.cc.o"
  "CMakeFiles/engine_eval_test.dir/engine_eval_test.cc.o.d"
  "engine_eval_test"
  "engine_eval_test.pdb"
  "engine_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
