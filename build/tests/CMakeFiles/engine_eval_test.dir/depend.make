# Empty dependencies file for engine_eval_test.
# This may be replaced when dependencies are built.
