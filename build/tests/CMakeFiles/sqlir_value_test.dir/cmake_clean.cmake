file(REMOVE_RECURSE
  "CMakeFiles/sqlir_value_test.dir/sqlir_value_test.cc.o"
  "CMakeFiles/sqlir_value_test.dir/sqlir_value_test.cc.o.d"
  "sqlir_value_test"
  "sqlir_value_test.pdb"
  "sqlir_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlir_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
