# Empty dependencies file for sqlir_value_test.
# This may be replaced when dependencies are built.
