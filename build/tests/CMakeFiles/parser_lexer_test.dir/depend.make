# Empty dependencies file for parser_lexer_test.
# This may be replaced when dependencies are built.
