file(REMOVE_RECURSE
  "CMakeFiles/parser_lexer_test.dir/parser_lexer_test.cc.o"
  "CMakeFiles/parser_lexer_test.dir/parser_lexer_test.cc.o.d"
  "parser_lexer_test"
  "parser_lexer_test.pdb"
  "parser_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parser_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
