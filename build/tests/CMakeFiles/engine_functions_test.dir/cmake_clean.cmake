file(REMOVE_RECURSE
  "CMakeFiles/engine_functions_test.dir/engine_functions_test.cc.o"
  "CMakeFiles/engine_functions_test.dir/engine_functions_test.cc.o.d"
  "engine_functions_test"
  "engine_functions_test.pdb"
  "engine_functions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_functions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
