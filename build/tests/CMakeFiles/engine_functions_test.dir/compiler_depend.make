# Empty compiler generated dependencies file for engine_functions_test.
# This may be replaced when dependencies are built.
