file(REMOVE_RECURSE
  "CMakeFiles/core_prioritizer_test.dir/core_prioritizer_test.cc.o"
  "CMakeFiles/core_prioritizer_test.dir/core_prioritizer_test.cc.o.d"
  "core_prioritizer_test"
  "core_prioritizer_test.pdb"
  "core_prioritizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_prioritizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
