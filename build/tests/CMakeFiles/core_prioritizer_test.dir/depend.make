# Empty dependencies file for core_prioritizer_test.
# This may be replaced when dependencies are built.
