# Empty dependencies file for engine_typecheck_test.
# This may be replaced when dependencies are built.
