file(REMOVE_RECURSE
  "CMakeFiles/engine_typecheck_test.dir/engine_typecheck_test.cc.o"
  "CMakeFiles/engine_typecheck_test.dir/engine_typecheck_test.cc.o.d"
  "engine_typecheck_test"
  "engine_typecheck_test.pdb"
  "engine_typecheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_typecheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
