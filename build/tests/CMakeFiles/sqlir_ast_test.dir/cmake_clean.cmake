file(REMOVE_RECURSE
  "CMakeFiles/sqlir_ast_test.dir/sqlir_ast_test.cc.o"
  "CMakeFiles/sqlir_ast_test.dir/sqlir_ast_test.cc.o.d"
  "sqlir_ast_test"
  "sqlir_ast_test.pdb"
  "sqlir_ast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlir_ast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
