# Empty compiler generated dependencies file for sqlir_ast_test.
# This may be replaced when dependencies are built.
