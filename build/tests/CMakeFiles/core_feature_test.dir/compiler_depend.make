# Empty compiler generated dependencies file for core_feature_test.
# This may be replaced when dependencies are built.
