file(REMOVE_RECURSE
  "CMakeFiles/core_feature_test.dir/core_feature_test.cc.o"
  "CMakeFiles/core_feature_test.dir/core_feature_test.cc.o.d"
  "core_feature_test"
  "core_feature_test.pdb"
  "core_feature_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_feature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
