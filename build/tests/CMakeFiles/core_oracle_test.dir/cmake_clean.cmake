file(REMOVE_RECURSE
  "CMakeFiles/core_oracle_test.dir/core_oracle_test.cc.o"
  "CMakeFiles/core_oracle_test.dir/core_oracle_test.cc.o.d"
  "core_oracle_test"
  "core_oracle_test.pdb"
  "core_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
