# Empty dependencies file for core_oracle_test.
# This may be replaced when dependencies are built.
