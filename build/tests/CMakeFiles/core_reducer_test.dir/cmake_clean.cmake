file(REMOVE_RECURSE
  "CMakeFiles/core_reducer_test.dir/core_reducer_test.cc.o"
  "CMakeFiles/core_reducer_test.dir/core_reducer_test.cc.o.d"
  "core_reducer_test"
  "core_reducer_test.pdb"
  "core_reducer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_reducer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
