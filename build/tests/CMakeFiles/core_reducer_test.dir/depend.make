# Empty dependencies file for core_reducer_test.
# This may be replaced when dependencies are built.
