# Empty compiler generated dependencies file for core_schema_model_test.
# This may be replaced when dependencies are built.
