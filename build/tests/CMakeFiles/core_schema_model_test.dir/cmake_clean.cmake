file(REMOVE_RECURSE
  "CMakeFiles/core_schema_model_test.dir/core_schema_model_test.cc.o"
  "CMakeFiles/core_schema_model_test.dir/core_schema_model_test.cc.o.d"
  "core_schema_model_test"
  "core_schema_model_test.pdb"
  "core_schema_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_schema_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
