file(REMOVE_RECURSE
  "CMakeFiles/util_persist_test.dir/util_persist_test.cc.o"
  "CMakeFiles/util_persist_test.dir/util_persist_test.cc.o.d"
  "util_persist_test"
  "util_persist_test.pdb"
  "util_persist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_persist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
