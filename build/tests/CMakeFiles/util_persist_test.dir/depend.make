# Empty dependencies file for util_persist_test.
# This may be replaced when dependencies are built.
