# Empty compiler generated dependencies file for core_campaign_test.
# This may be replaced when dependencies are built.
