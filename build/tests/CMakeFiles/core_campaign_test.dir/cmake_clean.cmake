file(REMOVE_RECURSE
  "CMakeFiles/core_campaign_test.dir/core_campaign_test.cc.o"
  "CMakeFiles/core_campaign_test.dir/core_campaign_test.cc.o.d"
  "core_campaign_test"
  "core_campaign_test.pdb"
  "core_campaign_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_campaign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
