# Empty dependencies file for core_generator_test.
# This may be replaced when dependencies are built.
