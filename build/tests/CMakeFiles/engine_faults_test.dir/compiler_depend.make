# Empty compiler generated dependencies file for engine_faults_test.
# This may be replaced when dependencies are built.
