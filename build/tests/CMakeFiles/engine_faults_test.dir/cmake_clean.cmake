file(REMOVE_RECURSE
  "CMakeFiles/engine_faults_test.dir/engine_faults_test.cc.o"
  "CMakeFiles/engine_faults_test.dir/engine_faults_test.cc.o.d"
  "engine_faults_test"
  "engine_faults_test.pdb"
  "engine_faults_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_faults_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
