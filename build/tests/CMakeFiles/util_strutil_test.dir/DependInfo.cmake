
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util_strutil_test.cc" "tests/CMakeFiles/util_strutil_test.dir/util_strutil_test.cc.o" "gcc" "tests/CMakeFiles/util_strutil_test.dir/util_strutil_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sqlpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dialect/CMakeFiles/sqlpp_dialect.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/sqlpp_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/sqlpp_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/sqlir/CMakeFiles/sqlpp_sqlir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sqlpp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
