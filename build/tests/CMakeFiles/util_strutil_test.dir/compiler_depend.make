# Empty compiler generated dependencies file for util_strutil_test.
# This may be replaced when dependencies are built.
