file(REMOVE_RECURSE
  "CMakeFiles/util_strutil_test.dir/util_strutil_test.cc.o"
  "CMakeFiles/util_strutil_test.dir/util_strutil_test.cc.o.d"
  "util_strutil_test"
  "util_strutil_test.pdb"
  "util_strutil_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_strutil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
