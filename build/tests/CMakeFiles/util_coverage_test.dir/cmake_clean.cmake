file(REMOVE_RECURSE
  "CMakeFiles/util_coverage_test.dir/util_coverage_test.cc.o"
  "CMakeFiles/util_coverage_test.dir/util_coverage_test.cc.o.d"
  "util_coverage_test"
  "util_coverage_test.pdb"
  "util_coverage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
