# Empty dependencies file for util_coverage_test.
# This may be replaced when dependencies are built.
