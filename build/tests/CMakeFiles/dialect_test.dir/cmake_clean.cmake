file(REMOVE_RECURSE
  "CMakeFiles/dialect_test.dir/dialect_test.cc.o"
  "CMakeFiles/dialect_test.dir/dialect_test.cc.o.d"
  "dialect_test"
  "dialect_test.pdb"
  "dialect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dialect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
