# Empty dependencies file for dialect_test.
# This may be replaced when dependencies are built.
