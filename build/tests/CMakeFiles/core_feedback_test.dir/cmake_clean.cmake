file(REMOVE_RECURSE
  "CMakeFiles/core_feedback_test.dir/core_feedback_test.cc.o"
  "CMakeFiles/core_feedback_test.dir/core_feedback_test.cc.o.d"
  "core_feedback_test"
  "core_feedback_test.pdb"
  "core_feedback_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_feedback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
