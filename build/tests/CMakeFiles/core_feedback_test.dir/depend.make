# Empty dependencies file for core_feedback_test.
# This may be replaced when dependencies are built.
