# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_rng_test[1]_include.cmake")
include("/root/repo/build/tests/util_status_test[1]_include.cmake")
include("/root/repo/build/tests/util_strutil_test[1]_include.cmake")
include("/root/repo/build/tests/util_coverage_test[1]_include.cmake")
include("/root/repo/build/tests/util_persist_test[1]_include.cmake")
include("/root/repo/build/tests/util_stats_test[1]_include.cmake")
include("/root/repo/build/tests/sqlir_value_test[1]_include.cmake")
include("/root/repo/build/tests/sqlir_ast_test[1]_include.cmake")
include("/root/repo/build/tests/parser_lexer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/engine_eval_test[1]_include.cmake")
include("/root/repo/build/tests/engine_functions_test[1]_include.cmake")
include("/root/repo/build/tests/engine_database_test[1]_include.cmake")
include("/root/repo/build/tests/engine_faults_test[1]_include.cmake")
include("/root/repo/build/tests/engine_typecheck_test[1]_include.cmake")
include("/root/repo/build/tests/dialect_test[1]_include.cmake")
include("/root/repo/build/tests/core_feature_test[1]_include.cmake")
include("/root/repo/build/tests/core_feedback_test[1]_include.cmake")
include("/root/repo/build/tests/core_schema_model_test[1]_include.cmake")
include("/root/repo/build/tests/core_generator_test[1]_include.cmake")
include("/root/repo/build/tests/core_oracle_test[1]_include.cmake")
include("/root/repo/build/tests/core_prioritizer_test[1]_include.cmake")
include("/root/repo/build/tests/core_reducer_test[1]_include.cmake")
include("/root/repo/build/tests/core_campaign_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
