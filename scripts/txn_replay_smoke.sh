#!/usr/bin/env bash
# Transactional-dossier replay smoke test: run a small ISO-only bug
# hunt over the campaign dialects (four of which ship isolation
# faults), pick one resulting dossier, assert its repro.sql carries
# the tick-annotated interleaving schedule (the "tNN sM:" comment
# lines that make a multi-session bug reviewable), and replay it with
# `dialect_probe --replay`. Replay re-derives the schedule from the
# dossier's base/predicate text via the salt idiom, so a successful
# exit proves the whole serialization → parse → regenerate →
# re-execute loop is closed for interleaved transactions.
#
# Usage: scripts/txn_replay_smoke.sh [path/to/bug_hunt] [path/to/dialect_probe]
set -u

BUG_HUNT="${1:-build/examples/bug_hunt}"
DIALECT_PROBE="${2:-build/examples/dialect_probe}"
for bin in "$BUG_HUNT" "$DIALECT_PROBE"; do
    if [ ! -x "$bin" ]; then
        echo "txn_replay_smoke: $bin not found; build first" >&2
        exit 1
    fi
done

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

"$BUG_HUNT" 40 --oracles iso --dossier-dir "$WORKDIR/dossiers" \
    > "$WORKDIR/hunt.log" 2>&1 || {
    echo "FAIL: iso bug hunt exited non-zero" >&2
    cat "$WORKDIR/hunt.log" >&2
    exit 1
}

REPRO=$(grep -l -- "-- oracle: ISO" "$WORKDIR"/dossiers/*/repro.sql \
    2>/dev/null | head -1)
if [ -z "$REPRO" ]; then
    echo "FAIL: no ISO dossier was written" >&2
    cat "$WORKDIR/hunt.log" >&2
    exit 1
fi

# The repro must embed the full interleaving: a schedule header, at
# least two sessions' tick lines, and the final-state probe.
grep -q -- "-- txn-schedule sessions=" "$REPRO" || {
    echo "FAIL: $REPRO has no txn-schedule header" >&2
    exit 1
}
grep -Eq -- "^-- t[0-9]+ s0: " "$REPRO" || {
    echo "FAIL: $REPRO has no tick-annotated s0 lines" >&2
    exit 1
}
grep -Eq -- "^-- t[0-9]+ s1: " "$REPRO" || {
    echo "FAIL: $REPRO has no tick-annotated s1 lines" >&2
    exit 1
}
grep -q -- "-- final: " "$REPRO" || {
    echo "FAIL: $REPRO has no final-state probe" >&2
    exit 1
}

"$DIALECT_PROBE" --replay "$REPRO" > "$WORKDIR/replay.log" 2>&1 || {
    echo "FAIL: dialect_probe --replay did not reproduce $REPRO" >&2
    cat "$WORKDIR/replay.log" >&2
    exit 1
}
grep -q "bug reproduced" "$WORKDIR/replay.log" || {
    echo "FAIL: replay output lacks confirmation" >&2
    cat "$WORKDIR/replay.log" >&2
    exit 1
}

echo "OK: transactional dossier $(basename "$(dirname "$REPRO")")" \
     "replayed with its regenerated interleaving schedule"
