#!/usr/bin/env python3
"""Convert a sqlpp.trace.v1 JSONL export into Chrome trace-event JSON.

Usage: trace_to_chrome.py trace.jsonl [chrome_trace.json]

The flight recorder's logical ticks become microsecond timestamps and
each lane becomes a thread (named after its shard label), so the
campaign timeline renders directly in chrome://tracing or Perfetto.
Events at the same tick keep their recorded order. Only the Python
standard library is used.
"""
import json
import sys


def convert(lines):
    """Yield Chrome trace events for an iterable of JSONL lines."""
    header = None
    named_lanes = set()
    for raw in lines:
        raw = raw.strip()
        if not raw:
            continue
        record = json.loads(raw)
        if header is None:
            if record.get("schema") != "sqlpp.trace.v1":
                raise ValueError(
                    "not a sqlpp.trace.v1 export: %r" % record)
            header = record
            continue
        lane = record["lane"]
        if lane not in named_lanes:
            named_lanes.add(lane)
            yield {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": lane,
                "args": {"name": record["shard"] or "main"},
            }
        yield {
            # Instant events on a logical-tick timeline; scope "t"
            # draws the marker across its own thread track only.
            "ph": "i",
            "s": "t",
            "name": record["type"],
            "cat": "sqlpp",
            "pid": 0,
            "tid": lane,
            "ts": record["tick"],
            "args": {
                "detail": record["detail"],
                "a": record["a"],
                "b": record["b"],
            },
        }
    if header is None:
        raise ValueError("empty trace: no sqlpp.trace.v1 header line")


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    with open(argv[1]) as handle:
        events = list(convert(handle))
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "sqlpp.trace.v1",
            "timeline": "logical ticks (statement index), not "
                        "wall-clock time",
        },
    }
    if len(argv) == 3:
        with open(argv[2], "w") as handle:
            json.dump(document, handle, indent=1)
        instants = sum(1 for e in events if e["ph"] == "i")
        print("wrote %s: %d events across %d lanes"
              % (argv[2], instants, len(events) - instants))
    else:
        json.dump(document, sys.stdout, indent=1)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
