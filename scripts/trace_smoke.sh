#!/usr/bin/env bash
# Flight-recorder smoke test: run a tiny campaign with --trace-out and
# --dossier-dir, validate the sqlpp.trace.v1 JSONL export, convert it
# to Chrome trace format, assert the fixed-seed byte-identity
# guarantee, and replay one dossier's repro.sql on a fresh connection
# through `dialect_probe --replay`.
#
# Usage: scripts/trace_smoke.sh [path/to/bug_hunt] [path/to/dialect_probe]
set -u

BUG_HUNT="${1:-build/examples/bug_hunt}"
DIALECT_PROBE="${2:-build/examples/dialect_probe}"
SCRIPTS="$(cd "$(dirname "$0")" && pwd)"
if [ ! -x "$BUG_HUNT" ]; then
    echo "trace_smoke: $BUG_HUNT not found; build first" >&2
    exit 1
fi

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

CHECKS=40
# The full oracle battery, so the trace carries every oracle's check
# events and the byte-identity guarantee covers the EET rewrite path.
ORACLES="tlp,norec,pqs,eet"

"$BUG_HUNT" "$CHECKS" --workers 1 --oracles "$ORACLES" \
    --trace-out "$WORKDIR/a.jsonl" \
    --dossier-dir "$WORKDIR/dossiers" --curve-interval 10 \
    > "$WORKDIR/run_a.log" 2>&1 || {
    echo "FAIL: bug_hunt exited non-zero" >&2
    cat "$WORKDIR/run_a.log" >&2
    exit 1
}

[ -s "$WORKDIR/a.jsonl" ] || {
    echo "FAIL: --trace-out wrote no document" >&2
    exit 1
}

# Schema validation: every line is JSON, the header carries the
# envelope, events use known types, carry no wall-clock fields, and
# ticks never decrease within a lane.
if command -v python3 > /dev/null 2>&1; then
    python3 - "$WORKDIR/a.jsonl" <<'PYEOF' || exit 1
import json
import sys

known_types = {
    "statement_executed", "error_class", "oracle_check",
    "feature_suppressed", "plan_discovered", "budget_exhausted",
    "bug_found", "reduce_done", "curve_sample", "checkpoint_written",
    "checkpoint_restored", "shard_started", "shard_abandoned",
}

with open(sys.argv[1]) as handle:
    lines = [json.loads(line) for line in handle if line.strip()]

header, events = lines[0], lines[1:]
assert header["schema"] == "sqlpp.trace.v1", header
assert header["events"] == len(events), (header, len(events))
assert events, "no events exported"

last_tick = {}
last_lane = -1
for event in events:
    assert set(event) == {"lane", "shard", "tick", "type", "detail",
                          "a", "b"}, event
    assert event["type"] in known_types, event
    # Lanes render in index order, oldest event first within a lane.
    assert event["lane"] >= last_lane, event
    if event["lane"] > last_lane:
        last_lane = event["lane"]
    assert event["tick"] >= last_tick.get(event["lane"], 0), event
    last_tick[event["lane"]] = event["tick"]

types = {event["type"] for event in events}
for required in ("shard_started", "oracle_check", "curve_sample"):
    assert required in types, "missing event type " + required

print("schema ok: %d events, %d lanes, types=%d"
      % (len(events), len(last_tick), len(types)))
PYEOF
else
    head -1 "$WORKDIR/a.jsonl" | grep -q '"schema": "sqlpp.trace.v1"' || {
        echo "FAIL: export lacks the sqlpp.trace.v1 envelope" >&2
        exit 1
    }
fi

# Chrome converter: must accept the export and emit a traceEvents doc.
if command -v python3 > /dev/null 2>&1; then
    python3 "$SCRIPTS/trace_to_chrome.py" "$WORKDIR/a.jsonl" \
        "$WORKDIR/a.chrome.json" || {
        echo "FAIL: trace_to_chrome.py rejected the export" >&2
        exit 1
    }
    grep -q '"traceEvents"' "$WORKDIR/a.chrome.json" || {
        echo "FAIL: converter wrote no traceEvents document" >&2
        exit 1
    }
fi

# Byte-identity: same seed, one worker → the exact same trace bytes.
"$BUG_HUNT" "$CHECKS" --workers 1 --oracles "$ORACLES" \
    --trace-out "$WORKDIR/b.jsonl" \
    --curve-interval 10 > "$WORKDIR/run_b.log" 2>&1 || {
    echo "FAIL: second bug_hunt run exited non-zero" >&2
    exit 1
}
cmp -s "$WORKDIR/a.jsonl" "$WORKDIR/b.jsonl" || {
    echo "FAIL: trace exports differ between identical runs" >&2
    diff "$WORKDIR/a.jsonl" "$WORKDIR/b.jsonl" | head -20 >&2
    exit 1
}

# Dossiers: at least one bug dossier with all artifacts, and its
# repro.sql must re-trigger the bug on a fresh connection.
FIRST_DOSSIER="$(find "$WORKDIR/dossiers" -mindepth 1 -maxdepth 1 \
    -type d | sort | head -1)"
if [ -z "$FIRST_DOSSIER" ]; then
    echo "FAIL: --dossier-dir produced no dossiers" >&2
    cat "$WORKDIR/run_a.log" >&2
    exit 1
fi
for leaf in repro.sql dossier.json events.jsonl metrics.json; do
    [ -s "$FIRST_DOSSIER/$leaf" ] || {
        echo "FAIL: dossier is missing $leaf" >&2
        ls -l "$FIRST_DOSSIER" >&2
        exit 1
    }
done

if [ -x "$DIALECT_PROBE" ]; then
    "$DIALECT_PROBE" --replay "$FIRST_DOSSIER/repro.sql" \
        > "$WORKDIR/replay.log" 2>&1 || {
        echo "FAIL: dossier repro.sql did not reproduce" >&2
        cat "$WORKDIR/replay.log" >&2
        exit 1
    }
else
    echo "trace_smoke: $DIALECT_PROBE not found; skipping replay" >&2
fi

echo "OK: sqlpp.trace.v1 export valid, byte-identical across runs," \
     "dossier replay reproduced"
