#!/usr/bin/env bash
# Guided-campaign smoke test: search-guided generation must be (a)
# byte-deterministic — two fixed-seed guided runs at --workers 1
# produce identical stdout tables and identical metrics JSON, and the
# guided learning-curve trajectory is byte-identical across runs — and
# (b) worth its keep: at the same statement budget the guided lane
# must surface strictly more unique plan fingerprints than the
# unguided adaptive lane.
#
# Usage: scripts/guided_smoke.sh [path/to/bug_hunt]
#                                [path/to/learning_curve]
set -u

BUG_HUNT="${1:-build/examples/bug_hunt}"
CURVE="${2:-build/bench/learning_curve}"
for bin in "$BUG_HUNT" "$CURVE"; do
    if [ ! -x "$bin" ]; then
        echo "guided_smoke: $bin not found; build first" >&2
        exit 1
    fi
done

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

CHECKS=150

# Two identical guided campaigns: the summary table and the exported
# metrics document (logical counters only, no timings) must match to
# the byte. The "queue drained" line carries wall-clock time, so it is
# filtered before comparing stdout.
for run in 1 2; do
    "$BUG_HUNT" "$CHECKS" --guidance ucb --workers 1 \
        --metrics-out "$WORKDIR/metrics$run.json" \
        > "$WORKDIR/hunt$run.log" 2>&1 || {
        echo "FAIL: guided bug_hunt run $run exited non-zero" >&2
        cat "$WORKDIR/hunt$run.log" >&2
        exit 1
    }
    grep -v "queue drained\|metrics:" "$WORKDIR/hunt$run.log" \
        > "$WORKDIR/hunt$run.filtered"
done
cmp -s "$WORKDIR/hunt1.filtered" "$WORKDIR/hunt2.filtered" || {
    echo "FAIL: guided campaign stdout differs across identical runs" >&2
    diff "$WORKDIR/hunt1.filtered" "$WORKDIR/hunt2.filtered" >&2
    exit 1
}
cmp -s "$WORKDIR/metrics1.json" "$WORKDIR/metrics2.json" || {
    echo "FAIL: guided campaign metrics differ across identical runs" >&2
    exit 1
}
grep -q "generator.guided.selections" "$WORKDIR/metrics1.json" || {
    echo "FAIL: guided run exported no guided-selection metrics" >&2
    exit 1
}

# The learning-curve bench prints the baseline/adaptive/guided
# unique-plan trajectories from a fixed internal seed: byte-identical
# across runs, and the guided lanes must end strictly above adaptive.
"$CURVE" 300 60 > "$WORKDIR/curve1.txt" 2>&1 || {
    echo "FAIL: learning_curve exited non-zero" >&2
    cat "$WORKDIR/curve1.txt" >&2
    exit 1
}
"$CURVE" 300 60 > "$WORKDIR/curve2.txt" 2>&1
cmp -s "$WORKDIR/curve1.txt" "$WORKDIR/curve2.txt" || {
    echo "FAIL: learning-curve output differs across identical runs" >&2
    diff "$WORKDIR/curve1.txt" "$WORKDIR/curve2.txt" >&2
    exit 1
}

plans_of() {
    awk -v lane="$1" '$1 == lane { print $NF }' "$WORKDIR/curve1.txt"
}
ADAPTIVE=$(plans_of adaptive)
UCB=$(plans_of guided-ucb)
THOMPSON=$(plans_of guided-thompson)
if [ -z "$ADAPTIVE" ] || [ -z "$UCB" ] || [ -z "$THOMPSON" ]; then
    echo "FAIL: learning-curve output is missing the plan lanes" >&2
    cat "$WORKDIR/curve1.txt" >&2
    exit 1
fi
if [ "$UCB" -le "$ADAPTIVE" ] || [ "$THOMPSON" -le "$ADAPTIVE" ]; then
    echo "FAIL: guided lanes must beat adaptive on unique plans" \
         "(adaptive=$ADAPTIVE ucb=$UCB thompson=$THOMPSON)" >&2
    exit 1
fi

echo "OK: guided campaign deterministic ($CHECKS checks/dialect);" \
     "unique plans adaptive=$ADAPTIVE ucb=$UCB thompson=$THOMPSON"
