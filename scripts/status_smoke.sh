#!/usr/bin/env bash
# Status-service smoke test: run a campaign with --status-port 0 and
# --progress, scrape the announced ephemeral port, and validate all
# three endpoints while the campaign is live:
#   /status        -> sqlpp.status.v1 JSON (campaign + shards)
#   /metrics       -> Prometheus text exposition
#   /trace?since=N -> sqlpp.trace.delta.v1 NDJSON
# Then assert the --progress line appeared and the run exited cleanly.
#
# Usage: scripts/status_smoke.sh [path/to/bug_hunt]
set -u

BUG_HUNT="${1:-build/examples/bug_hunt}"
if [ ! -x "$BUG_HUNT" ]; then
    echo "status_smoke: $BUG_HUNT not found; build first" >&2
    exit 1
fi

WORKDIR="$(mktemp -d)"
HUNT_PID=""
cleanup() {
    [ -n "$HUNT_PID" ] && kill "$HUNT_PID" 2> /dev/null
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

fetch() { # fetch URL -> stdout, non-zero on connection failure
    if command -v curl > /dev/null 2>&1; then
        curl -sf --max-time 10 "$1"
    else
        python3 -c 'import sys, urllib.request
sys.stdout.write(urllib.request.urlopen(sys.argv[1], timeout=10).read().decode())' "$1"
    fi
}

# Enough checks that the campaign (17 dialect shards) is still running
# while we poll — the status line is printed before the first shard
# starts, so the scrape window is nearly the whole campaign.
"$BUG_HUNT" 200 --workers 2 --status-port 0 --progress 0.2 \
    > "$WORKDIR/run.log" 2>&1 &
HUNT_PID=$!

PORT=""
for _ in $(seq 1 100); do
    PORT="$(sed -n \
        's#^status: serving on http://127\.0\.0\.1:\([0-9]*\).*#\1#p' \
        "$WORKDIR/run.log")"
    [ -n "$PORT" ] && break
    kill -0 "$HUNT_PID" 2> /dev/null || break
    sleep 0.1
done
[ -n "$PORT" ] || {
    echo "FAIL: no 'status: serving' line announced a port" >&2
    cat "$WORKDIR/run.log" >&2
    exit 1
}

fetch "http://127.0.0.1:$PORT/status" > "$WORKDIR/status.json" || {
    echo "FAIL: GET /status failed (campaign may have exited early)" >&2
    cat "$WORKDIR/run.log" >&2
    exit 1
}
fetch "http://127.0.0.1:$PORT/metrics" > "$WORKDIR/metrics.txt" || {
    echo "FAIL: GET /metrics failed" >&2
    exit 1
}
fetch "http://127.0.0.1:$PORT/trace?since=0" > "$WORKDIR/trace.ndjson" || {
    echo "FAIL: GET /trace failed" >&2
    exit 1
}

# /status: parse and check the envelope.
if command -v python3 > /dev/null 2>&1; then
    python3 - "$WORKDIR/status.json" <<'PYEOF' || exit 1
import json
import sys

with open(sys.argv[1]) as handle:
    doc = json.load(handle)

assert doc["schema"] == "sqlpp.status.v1", doc.get("schema")
campaign = doc["campaign"]
for key in ("active", "workers", "shards_total", "checks_attempted",
            "bugs_detected", "stall_threshold_seconds"):
    assert key in campaign, "campaign missing " + key
shards = doc["shards"]
assert isinstance(shards, list) and shards, "no shard entries"
for shard in shards:
    for key in ("shard", "label", "state", "checks_attempted",
                "stalled"):
        assert key in shard, "shard missing " + key
assert isinstance(doc["stalled"], list)
print("status ok: %d shards" % len(shards))
PYEOF
else
    grep -q '"schema": "sqlpp.status.v1"' "$WORKDIR/status.json" || {
        echo "FAIL: /status lacks the sqlpp.status.v1 envelope" >&2
        exit 1
    }
fi

# /metrics: Prometheus exposition with histogram series.
grep -q '^# TYPE sqlpp_' "$WORKDIR/metrics.txt" || {
    echo "FAIL: /metrics has no '# TYPE sqlpp_' lines" >&2
    head -5 "$WORKDIR/metrics.txt" >&2
    exit 1
}
grep -q '_bucket{le="+Inf"}' "$WORKDIR/metrics.txt" || {
    echo "FAIL: /metrics has no +Inf histogram bucket" >&2
    exit 1
}
grep -q '_count ' "$WORKDIR/metrics.txt" || {
    echo "FAIL: /metrics has no _count series" >&2
    exit 1
}

# /trace: delta NDJSON header.
head -1 "$WORKDIR/trace.ndjson" |
    grep -q '"schema": "sqlpp.trace.delta.v1"' || {
    echo "FAIL: /trace lacks the sqlpp.trace.delta.v1 header" >&2
    head -1 "$WORKDIR/trace.ndjson" >&2
    exit 1
}

wait "$HUNT_PID"
HUNT_STATUS=$?
HUNT_PID=""
[ "$HUNT_STATUS" -eq 0 ] || {
    echo "FAIL: bug_hunt exited $HUNT_STATUS" >&2
    cat "$WORKDIR/run.log" >&2
    exit 1
}

grep -q '^progress: ' "$WORKDIR/run.log" || {
    echo "FAIL: --progress printed no progress lines" >&2
    cat "$WORKDIR/run.log" >&2
    exit 1
}

echo "OK: /status /metrics /trace live and valid; progress lines printed"
