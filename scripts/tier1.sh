#!/usr/bin/env bash
# Tier-1 verification pipeline, fastest signal first:
#
#   1. unit lane    — configure + build, then `ctest -L unit`: the
#                     sub-second suites, for a quick inner loop.
#   2. full suite   — every registered test (unit + integration +
#                     smoke), the bar every PR must clear.
#   3. asan lane    — rebuild in a separate tree with
#                     -DSQLPP_SANITIZE=address and rerun the unit lane
#                     under AddressSanitizer.
#
# Usage: scripts/tier1.sh [--unit-only] [--no-asan] [-j N]
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build"
ASAN_BUILD="$ROOT/build-asan"
JOBS=4
RUN_FULL=1
RUN_ASAN=1

while [ $# -gt 0 ]; do
    case "$1" in
      --unit-only) RUN_FULL=0; RUN_ASAN=0 ;;
      --no-asan) RUN_ASAN=0 ;;
      -j) JOBS="$2"; shift ;;
      *) echo "usage: $0 [--unit-only] [--no-asan] [-j N]" >&2; exit 2 ;;
    esac
    shift
done

echo "== tier1: configure + build =="
cmake -B "$BUILD" -S "$ROOT" >/dev/null
cmake --build "$BUILD" -j "$JOBS"

echo "== tier1: unit lane (ctest -L unit) =="
ctest --test-dir "$BUILD" -L unit --output-on-failure -j "$JOBS" \
    --timeout 300

if [ "$RUN_FULL" -eq 1 ]; then
    echo "== tier1: full suite =="
    ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS" \
        --timeout 300
fi

if [ "$RUN_ASAN" -eq 1 ]; then
    echo "== tier1: asan unit lane =="
    cmake -B "$ASAN_BUILD" -S "$ROOT" -DSQLPP_SANITIZE=address \
        >/dev/null
    cmake --build "$ASAN_BUILD" -j "$JOBS"
    ctest --test-dir "$ASAN_BUILD" -L unit --output-on-failure \
        -j "$JOBS" --timeout 300
fi

echo "== tier1: OK =="
