#!/usr/bin/env bash
# Tier-1 verification pipeline, fastest signal first:
#
#   1. unit lane    — configure + build, then `ctest -L unit`: the
#                     sub-second suites, for a quick inner loop.
#   2. full suite   — every registered test (unit + integration +
#                     smoke), the bar every PR must clear.
#   3. trace lanes  — run the flight-recorder smoke test against the
#                     main build, then compile-check a tree configured
#                     with -DSQLPP_TRACE=OFF (the hooks must vanish
#                     cleanly, not bit-rot).
#   4. batch lanes  — compile-check a tree configured with
#                     -DSQLPP_BATCH=OFF (the row-only degradation must
#                     keep building), run its unit lane (proves the
#                     gated call sites degrade to row execution, not
#                     just compile), and snapshot the batch-vs-row
#                     micro benchmarks to BENCH_batch.json.
#   5. asan lane    — rebuild in a separate tree with
#                     -DSQLPP_SANITIZE=address and rerun the unit lane
#                     under AddressSanitizer. The main build keeps
#                     SQLPP_BATCH=ON (the default), so the full suite —
#                     including the 200-seed batch differential — runs
#                     the vectorized kernels; the asan tree inherits the
#                     same default and sanitizes them too.
#   6. guided lane  — run the guided-generation smoke test: fixed-seed
#                     guided campaigns must be byte-deterministic at
#                     --workers 1 (stdout table, metrics JSON, and the
#                     learning-curve trajectory), and the guided lanes
#                     must beat the adaptive lane on unique plan
#                     fingerprints at the same statement budget.
#   7. status lane  — run the live status-service smoke test (the
#                     /status, /metrics, and /trace endpoints answer
#                     while a campaign runs), then compile-check a tree
#                     configured with -DSQLPP_STATUS=OFF and run its
#                     unit lane: the server must stub out cleanly while
#                     the progress board keeps working.
#   8. txn lanes    — replay-smoke a tick-annotated transactional
#                     dossier (bug_hunt --oracles iso → dialect_probe
#                     --replay), then rebuild with
#                     -DSQLPP_SANITIZE=thread and run the interleaving
#                     and scheduler suites under ThreadSanitizer: the
#                     multi-session transaction tests plus the worker
#                     pool are the code most worth racing-checking.
#
# Usage: scripts/tier1.sh [--unit-only] [--no-asan] [--no-trace]
#                         [--no-batch] [--no-guided] [--no-status]
#                         [--no-txn] [-j N]
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build"
ASAN_BUILD="$ROOT/build-asan"
NOTRACE_BUILD="$ROOT/build-notrace"
NOBATCH_BUILD="$ROOT/build-nobatch"
NOSTATUS_BUILD="$ROOT/build-nostatus"
TSAN_BUILD="$ROOT/build-tsan"
JOBS=4
RUN_FULL=1
RUN_ASAN=1
RUN_TRACE=1
RUN_BATCH=1
RUN_GUIDED=1
RUN_STATUS=1
RUN_TXN=1

while [ $# -gt 0 ]; do
    case "$1" in
      --unit-only)
          RUN_FULL=0; RUN_ASAN=0; RUN_TRACE=0; RUN_BATCH=0
          RUN_GUIDED=0; RUN_STATUS=0; RUN_TXN=0 ;;
      --no-asan) RUN_ASAN=0 ;;
      --no-trace) RUN_TRACE=0 ;;
      --no-batch) RUN_BATCH=0 ;;
      --no-guided) RUN_GUIDED=0 ;;
      --no-status) RUN_STATUS=0 ;;
      --no-txn) RUN_TXN=0 ;;
      -j) JOBS="$2"; shift ;;
      *) echo "usage: $0 [--unit-only] [--no-asan] [--no-trace]" \
             "[--no-batch] [--no-guided] [--no-status] [--no-txn]" \
             "[-j N]" >&2
         exit 2 ;;
    esac
    shift
done

echo "== tier1: configure + build =="
cmake -B "$BUILD" -S "$ROOT" >/dev/null
cmake --build "$BUILD" -j "$JOBS"

echo "== tier1: unit lane (ctest -L unit) =="
ctest --test-dir "$BUILD" -L unit --output-on-failure -j "$JOBS" \
    --timeout 300

if [ "$RUN_FULL" -eq 1 ]; then
    echo "== tier1: full suite =="
    ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS" \
        --timeout 300
fi

if [ "$RUN_TRACE" -eq 1 ]; then
    echo "== tier1: flight-recorder smoke =="
    "$ROOT/scripts/trace_smoke.sh" "$BUILD/examples/bug_hunt" \
        "$BUILD/examples/dialect_probe"

    echo "== tier1: -DSQLPP_TRACE=OFF compile check =="
    cmake -B "$NOTRACE_BUILD" -S "$ROOT" -DSQLPP_TRACE=OFF >/dev/null
    cmake --build "$NOTRACE_BUILD" -j "$JOBS"
fi

if [ "$RUN_BATCH" -eq 1 ]; then
    echo "== tier1: -DSQLPP_BATCH=OFF lane =="
    cmake -B "$NOBATCH_BUILD" -S "$ROOT" -DSQLPP_BATCH=OFF >/dev/null
    cmake --build "$NOBATCH_BUILD" -j "$JOBS"
    # Unit suites must pass with every batch call site compiled out:
    # ExecMode::Batch then degrades to row execution identical to
    # Optimized, and the kernel-engagement test skips itself.
    ctest --test-dir "$NOBATCH_BUILD" -L unit --output-on-failure \
        -j "$JOBS" --timeout 300

    echo "== tier1: batch throughput snapshot =="
    "$BUILD/bench/micro_throughput" \
        --benchmark_filter='ScanFilter|Project' \
        --benchmark_out="$ROOT/BENCH_batch.json" \
        --benchmark_out_format=json
fi

if [ "$RUN_ASAN" -eq 1 ]; then
    echo "== tier1: asan unit lane =="
    cmake -B "$ASAN_BUILD" -S "$ROOT" -DSQLPP_SANITIZE=address \
        >/dev/null
    cmake --build "$ASAN_BUILD" -j "$JOBS"
    ctest --test-dir "$ASAN_BUILD" -L unit --output-on-failure \
        -j "$JOBS" --timeout 300
    if [ "$RUN_BATCH" -eq 1 ]; then
        # Drive the vectorized kernels through the 200-seed batch
        # differential under AddressSanitizer: selection vectors and
        # column scratch buffers are exactly the kind of indexed
        # hot-loop code ASan exists for.
        ctest --test-dir "$ASAN_BUILD" -R EngineBatchDifferentialTest \
            --output-on-failure --timeout 300
    fi
fi

if [ "$RUN_GUIDED" -eq 1 ]; then
    echo "== tier1: guided-generation smoke =="
    "$ROOT/scripts/guided_smoke.sh" "$BUILD/examples/bug_hunt" \
        "$BUILD/bench/learning_curve"
fi

if [ "$RUN_STATUS" -eq 1 ]; then
    echo "== tier1: status-service smoke =="
    "$ROOT/scripts/status_smoke.sh" "$BUILD/examples/bug_hunt"

    echo "== tier1: -DSQLPP_STATUS=OFF lane =="
    cmake -B "$NOSTATUS_BUILD" -S "$ROOT" -DSQLPP_STATUS=OFF >/dev/null
    cmake --build "$NOSTATUS_BUILD" -j "$JOBS"
    # The stubbed server must report Unsupported and the progress
    # board (plain atomics, always compiled) must keep every test
    # green.
    ctest --test-dir "$NOSTATUS_BUILD" -L unit --output-on-failure \
        -j "$JOBS" --timeout 300
fi

if [ "$RUN_TXN" -eq 1 ]; then
    echo "== tier1: transactional dossier replay smoke =="
    "$ROOT/scripts/txn_replay_smoke.sh" "$BUILD/examples/bug_hunt" \
        "$BUILD/examples/dialect_probe"

    echo "== tier1: tsan interleaving lane =="
    cmake -B "$TSAN_BUILD" -S "$ROOT" -DSQLPP_SANITIZE=thread \
        >/dev/null
    cmake --build "$TSAN_BUILD" -j "$JOBS"
    # The multi-session transaction machinery (snapshot views, commit
    # replay, isolation-fault overlays) plus the ISO oracle and the
    # threaded scheduler, all under ThreadSanitizer.
    ctest --test-dir "$TSAN_BUILD" \
        -R "TxnTest|TxnFaultTest|TxnGenTest|IsolationOracleTest|SchedulerTest" \
        --output-on-failure -j "$JOBS" --timeout 300
fi

echo "== tier1: OK =="
