#!/usr/bin/env bash
# Crash/resume smoke test: SIGKILL a checkpointed bug_hunt mid-campaign,
# assert the checkpoint file survived (atomic rewrite) and still loads,
# then resume and require the run to complete with restored shards.
# The resumed run writes bug dossiers; a second resume from the
# now-complete checkpoint (every shard restored, nothing re-run) must
# produce the identical dossier set — bug ids and repro.sql bytes —
# proving dossiers survive the kill/restore round-trip.
#
# With --guidance ucb|thompson the same kill/restore round-trip runs
# a guided campaign: the bandit's arm counters ride the checkpoint, so
# the resumed shards must still produce the identical dossier set.
#
# Usage: scripts/crash_resume_smoke.sh [path/to/bug_hunt]
#                                      [--guidance MODE]
set -u

BUG_HUNT="build/examples/bug_hunt"
GUIDANCE_ARGS=()
while [ $# -gt 0 ]; do
    case "$1" in
      --guidance) GUIDANCE_ARGS=(--guidance "$2"); shift ;;
      *) BUG_HUNT="$1" ;;
    esac
    shift
done
if [ ! -x "$BUG_HUNT" ]; then
    echo "crash_resume_smoke: $BUG_HUNT not found; build first" >&2
    exit 1
fi

WORKDIR="$(mktemp -d)"
CHECKPOINT="$WORKDIR/campaign.ckpt"
trap 'rm -rf "$WORKDIR"' EXIT

# Enough checks per dialect that the fleet cannot finish instantly,
# so the kill lands mid-campaign on any machine. All five oracles run
# so the checkpoint payload (per-oracle tallies, inapplicable
# counts, bug query lists) is exercised across the kill — including
# ISO, whose salt-derived interleaving schedules must regenerate
# identically on the resumed shards.
CHECKS=2000
ORACLES="tlp,norec,pqs,eet,iso"

"$BUG_HUNT" "$CHECKS" --oracles "$ORACLES" --checkpoint "$CHECKPOINT" \
    ${GUIDANCE_ARGS[@]+"${GUIDANCE_ARGS[@]}"} \
    > "$WORKDIR/first.log" 2>&1 &
PID=$!

# Wait for the first shard to be checkpointed, then kill -9.
for _ in $(seq 1 120); do
    [ -s "$CHECKPOINT" ] && break
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.5
done

if kill -0 "$PID" 2>/dev/null; then
    kill -9 "$PID"
    wait "$PID" 2>/dev/null
    KILLED=1
else
    # Campaign finished before the kill window closed — still a valid
    # (if less interesting) run; the resume below must then restore
    # every shard.
    wait "$PID"
    KILLED=0
fi

if [ ! -s "$CHECKPOINT" ]; then
    echo "FAIL: no checkpoint file was written" >&2
    cat "$WORKDIR/first.log" >&2
    exit 1
fi

head -1 "$CHECKPOINT" | grep -q "sqlancerpp-kv-v2" || {
    echo "FAIL: checkpoint file is not a valid KvStore" >&2
    exit 1
}
grep -q "meta.format=sqlancerpp-checkpoint-v3" "$CHECKPOINT" || {
    echo "FAIL: checkpoint file has no campaign metadata" >&2
    exit 1
}

"$BUG_HUNT" "$CHECKS" --oracles "$ORACLES" --checkpoint "$CHECKPOINT" \
    ${GUIDANCE_ARGS[@]+"${GUIDANCE_ARGS[@]}"} \
    --resume --dossier-dir "$WORKDIR/dossiers1" \
    > "$WORKDIR/resume.log" 2>&1
STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "FAIL: resumed run exited with status $STATUS" >&2
    cat "$WORKDIR/resume.log" >&2
    exit 1
fi

RESTORED=$(sed -n 's/.*(\([0-9]*\) shards\{0,1\} restored.*/\1/p' \
    "$WORKDIR/resume.log")
if [ -z "$RESTORED" ] || [ "$RESTORED" -lt 1 ]; then
    echo "FAIL: resumed run restored no shards" >&2
    cat "$WORKDIR/resume.log" >&2
    exit 1
fi

# The checkpoint now holds every shard. A second resume restores all
# of them without executing a single statement, and its dossier set
# must be byte-identical to the one the live+restored run produced.
"$BUG_HUNT" "$CHECKS" --oracles "$ORACLES" --checkpoint "$CHECKPOINT" \
    ${GUIDANCE_ARGS[@]+"${GUIDANCE_ARGS[@]}"} \
    --resume --dossier-dir "$WORKDIR/dossiers2" \
    > "$WORKDIR/resume2.log" 2>&1 || {
    echo "FAIL: fully-restored resume exited non-zero" >&2
    cat "$WORKDIR/resume2.log" >&2
    exit 1
}

IDS1=$(cd "$WORKDIR/dossiers1" 2>/dev/null && ls -1 | sort)
IDS2=$(cd "$WORKDIR/dossiers2" 2>/dev/null && ls -1 | sort)
if [ -z "$IDS1" ]; then
    echo "FAIL: resumed run wrote no dossiers" >&2
    cat "$WORKDIR/resume.log" >&2
    exit 1
fi
if [ "$IDS1" != "$IDS2" ]; then
    echo "FAIL: dossier id sets differ across resume round-trips" >&2
    diff <(echo "$IDS1") <(echo "$IDS2") >&2
    exit 1
fi
for id in $IDS1; do
    cmp -s "$WORKDIR/dossiers1/$id/repro.sql" \
        "$WORKDIR/dossiers2/$id/repro.sql" || {
        echo "FAIL: repro.sql differs for dossier $id" >&2
        exit 1
    }
done
DOSSIERS=$(echo "$IDS1" | wc -l)

echo "OK: killed=$KILLED, resumed run restored $RESTORED shard(s)," \
     "completed, and $DOSSIERS dossier(s) were stable across restore"
