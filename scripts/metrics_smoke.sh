#!/usr/bin/env bash
# Metrics smoke test: run a tiny campaign with --metrics-out, validate
# the exported document against the sqlpp.metrics.v1 schema, and assert
# the byte-identity guarantee (same seed, one worker → same bytes).
#
# Usage: scripts/metrics_smoke.sh [path/to/bug_hunt]
set -u

BUG_HUNT="${1:-build/examples/bug_hunt}"
if [ ! -x "$BUG_HUNT" ]; then
    echo "metrics_smoke: $BUG_HUNT not found; build first" >&2
    exit 1
fi

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

CHECKS=20

"$BUG_HUNT" "$CHECKS" --workers 1 --metrics-out "$WORKDIR/a.json" \
    --metrics-summary > "$WORKDIR/run_a.log" 2>&1 || {
    echo "FAIL: bug_hunt exited non-zero" >&2
    cat "$WORKDIR/run_a.log" >&2
    exit 1
}

[ -s "$WORKDIR/a.json" ] || {
    echo "FAIL: --metrics-out wrote no document" >&2
    exit 1
}

grep -q "connection.statements" "$WORKDIR/run_a.log" || {
    echo "FAIL: --metrics-summary printed no metrics table" >&2
    cat "$WORKDIR/run_a.log" >&2
    exit 1
}

# Schema validation: parse as JSON, check the envelope, require the
# core metric families, and require every entry to be well-formed.
if command -v python3 > /dev/null 2>&1; then
    python3 - "$WORKDIR/a.json" <<'PYEOF' || exit 1
import json
import sys

with open(sys.argv[1]) as handle:
    doc = json.load(handle)

assert doc["schema"] == "sqlpp.metrics.v1", doc.get("schema")
metrics = doc["metrics"]
assert isinstance(metrics, list) and metrics, "empty metrics list"

names = [m["name"] for m in metrics]
assert names == sorted(names), "metrics are not sorted by name"
assert len(set(names)) == len(names), "duplicate metric names"

for metric in metrics:
    kind = metric["kind"]
    assert kind in ("counter", "gauge", "histogram", "timer"), kind
    if kind in ("counter", "gauge"):
        assert isinstance(metric["total"], int), metric
        for shard in metric.get("shards", []):
            assert isinstance(shard["shard"], str), metric
            assert isinstance(shard["value"], int), metric
    else:
        assert isinstance(metric["count"], int), metric
        if kind == "timer":
            # Determinism contract: no wall-clock values by default.
            assert "sum" not in metric and "buckets" not in metric, \
                metric

for family in ("generator.", "connection.", "oracle.", "campaign.",
               "scheduler."):
    assert any(n.startswith(family) for n in names), \
        "missing metric family " + family

print("schema ok: %d metrics" % len(metrics))
PYEOF
else
    # Fallback without python3: structural greps only.
    grep -q '"schema": "sqlpp.metrics.v1"' "$WORKDIR/a.json" || {
        echo "FAIL: document lacks the sqlpp.metrics.v1 envelope" >&2
        exit 1
    }
    for family in generator connection oracle campaign scheduler; do
        grep -q "\"name\": \"$family\." "$WORKDIR/a.json" || {
            echo "FAIL: missing metric family $family" >&2
            exit 1
        }
    done
fi

# Byte-identity: a second run with the same seed and one worker must
# export the exact same document.
"$BUG_HUNT" "$CHECKS" --workers 1 --metrics-out "$WORKDIR/b.json" \
    > "$WORKDIR/run_b.log" 2>&1 || {
    echo "FAIL: second bug_hunt run exited non-zero" >&2
    exit 1
}
cmp -s "$WORKDIR/a.json" "$WORKDIR/b.json" || {
    echo "FAIL: metrics documents differ between identical runs" >&2
    diff "$WORKDIR/a.json" "$WORKDIR/b.json" | head -20 >&2
    exit 1
}

echo "OK: sqlpp.metrics.v1 document valid and byte-identical across runs"
