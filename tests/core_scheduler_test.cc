/**
 * @file
 * CampaignScheduler tests: shard layout, worker-count-independent
 * deterministic merging, cross-slice bug dedup, feedback fan-in, and
 * per-worker observability.
 */
#include <gtest/gtest.h>

#include "core/scheduler.h"

namespace sqlpp {
namespace {

SchedulerConfig
sliceConfig(size_t workers, size_t slices, uint64_t seed = 7)
{
    SchedulerConfig config;
    config.mode = ScheduleMode::SliceChecks;
    config.workers = workers;
    config.slices = slices;
    config.campaign.dialect = "sqlite-like";
    config.campaign.seed = seed;
    config.campaign.setupStatements = 40;
    config.campaign.checks = 240;
    config.campaign.feedback.updateInterval = 100;
    config.campaign.feedback.ddlFailureLimit = 6;
    config.campaign.generator.depthStep = 80;
    return config;
}

TEST(SchedulerTest, SliceLayoutSplitsBudgetDeterministically)
{
    SchedulerConfig config = sliceConfig(/*workers=*/2, /*slices=*/4);
    config.campaign.checks = 10;
    CampaignScheduler scheduler(config);
    auto shards = scheduler.plan();
    ASSERT_EQ(shards.size(), 4u);
    // 10 checks over 4 slices: 3, 3, 2, 2 — nothing lost.
    EXPECT_EQ(shards[0].checks, 3u);
    EXPECT_EQ(shards[1].checks, 3u);
    EXPECT_EQ(shards[2].checks, 2u);
    EXPECT_EQ(shards[3].checks, 2u);
    size_t total = 0;
    for (size_t i = 0; i < shards.size(); ++i) {
        total += shards[i].checks;
        EXPECT_EQ(shards[i].seed, config.campaign.seed ^ i) << i;
        EXPECT_EQ(shards[i].dialect, "sqlite-like");
    }
    EXPECT_EQ(total, 10u);
    // Shard 0 keeps the campaign seed itself.
    EXPECT_EQ(shards[0].seed, config.campaign.seed);
}

TEST(SchedulerTest, SlicesDefaultToWorkerCount)
{
    SchedulerConfig config = sliceConfig(/*workers=*/3, /*slices=*/0);
    CampaignScheduler scheduler(config);
    EXPECT_EQ(scheduler.plan().size(), 3u);
}

TEST(SchedulerTest, DialectLayoutCoversCampaignFleet)
{
    SchedulerConfig config;
    config.mode = ScheduleMode::ShardDialects;
    config.campaign.seed = 5;
    CampaignScheduler scheduler(config);
    auto shards = scheduler.plan();
    auto fleet = campaignDialects();
    ASSERT_EQ(shards.size(), fleet.size());
    for (size_t i = 0; i < shards.size(); ++i) {
        EXPECT_EQ(shards[i].dialect, fleet[i]->name);
        // Dialect shards keep the campaign seed: each matches what a
        // sequential per-dialect loop would have run.
        EXPECT_EQ(shards[i].seed, config.campaign.seed);
    }
}

TEST(SchedulerTest, MergedStatsIdenticalAcrossWorkerCounts)
{
    // The acceptance bar: same seed and shard layout => bit-identical
    // merged results whether 1 or 4 workers ran them.
    ScheduleReport one = CampaignScheduler(sliceConfig(1, 4)).run();
    ScheduleReport four = CampaignScheduler(sliceConfig(4, 4)).run();

    EXPECT_EQ(one.merged.checksAttempted, four.merged.checksAttempted);
    EXPECT_EQ(one.merged.checksValid, four.merged.checksValid);
    EXPECT_EQ(one.merged.bugsDetected, four.merged.bugsDetected);
    EXPECT_EQ(one.merged.setupGenerated, four.merged.setupGenerated);
    EXPECT_EQ(one.merged.setupSucceeded, four.merged.setupSucceeded);
    EXPECT_EQ(one.merged.planFingerprints, four.merged.planFingerprints);
    ASSERT_EQ(one.merged.prioritizedBugs.size(),
              four.merged.prioritizedBugs.size());
    for (size_t i = 0; i < one.merged.prioritizedBugs.size(); ++i) {
        EXPECT_EQ(one.merged.prioritizedBugs[i].baseText,
                  four.merged.prioritizedBugs[i].baseText);
        EXPECT_EQ(one.merged.prioritizedBugs[i].predicateText,
                  four.merged.prioritizedBugs[i].predicateText);
        EXPECT_EQ(one.merged.prioritizedBugs[i].oracle,
                  four.merged.prioritizedBugs[i].oracle);
    }
    EXPECT_GT(one.merged.checksAttempted, 100u);
    EXPECT_GT(one.merged.bugsDetected, 0u);
}

TEST(SchedulerTest, MergeMatchesManualSequentialRun)
{
    SchedulerConfig config = sliceConfig(/*workers=*/2, /*slices=*/3);
    CampaignScheduler scheduler(config);
    ScheduleReport report = scheduler.run();

    // Re-run every shard config by hand and fold with
    // CampaignStats::merge; counters and plans must agree exactly.
    CampaignStats manual;
    for (const CampaignConfig &shard_config :
         CampaignScheduler(config).plan()) {
        CampaignRunner runner(shard_config);
        manual.merge(runner.run());
    }
    EXPECT_EQ(report.merged.checksAttempted, manual.checksAttempted);
    EXPECT_EQ(report.merged.checksValid, manual.checksValid);
    EXPECT_EQ(report.merged.bugsDetected, manual.bugsDetected);
    EXPECT_EQ(report.merged.setupGenerated, manual.setupGenerated);
    EXPECT_EQ(report.merged.planFingerprints, manual.planFingerprints);
    // Scheduler-side cross-slice dedup can only shrink the bug list.
    EXPECT_LE(report.merged.prioritizedBugs.size(),
              manual.prioritizedBugs.size());
}

TEST(SchedulerTest, CrossSliceDuplicatesCollapse)
{
    CampaignScheduler scheduler(sliceConfig(2, 4));
    ScheduleReport report = scheduler.run();
    size_t shard_total = 0;
    size_t kept_total = 0;
    for (const ShardOutcome &shard : report.shards) {
        shard_total += shard.stats.prioritizedBugs.size();
        kept_total += shard.bugsKeptAfterMerge;
    }
    EXPECT_EQ(report.merged.prioritizedBugs.size(), kept_total);
    EXPECT_LE(kept_total, shard_total);
    // In slice mode the merged prioritizer holds exactly the surviving
    // feature sets — single-run semantics over the merged stream.
    EXPECT_EQ(scheduler.mergedPrioritizer().size(),
              report.merged.prioritizedBugs.size());
}

TEST(SchedulerTest, MergedFeedbackAggregatesAllShards)
{
    CampaignScheduler scheduler(sliceConfig(2, 4));
    ScheduleReport report = scheduler.run();
    // One record() per setup statement and per attempted check, summed
    // over shards, must land in the merged tracker.
    EXPECT_EQ(scheduler.mergedFeedback().recorded(),
              report.merged.setupGenerated +
                  report.merged.checksAttempted);
}

TEST(SchedulerTest, WorkerObservabilityAccounted)
{
    ScheduleReport report = CampaignScheduler(sliceConfig(4, 8)).run();
    ASSERT_EQ(report.workers.size(), 4u);
    size_t shards_run = 0;
    uint64_t checks = 0;
    for (const WorkerReport &worker : report.workers) {
        shards_run += worker.shardsRun;
        checks += worker.checksAttempted;
    }
    EXPECT_EQ(shards_run, 8u);
    EXPECT_EQ(checks, report.merged.checksAttempted);
    EXPECT_GT(report.queueDrainSeconds, 0.0);
    EXPECT_GT(report.checksPerSecond(), 0.0);
    for (const ShardOutcome &shard : report.shards) {
        EXPECT_LT(shard.workerIndex, 4u);
        EXPECT_GE(shard.seconds, 0.0);
    }
}

TEST(SchedulerTest, DialectModeMatchesSequentialPerDialectRuns)
{
    SchedulerConfig config;
    config.mode = ScheduleMode::ShardDialects;
    config.workers = 3;
    config.dialects = {"sqlite-like", "cratedb-like", "mysql-like"};
    config.campaign.seed = 11;
    config.campaign.setupStatements = 40;
    config.campaign.checks = 150;
    config.campaign.feedback.updateInterval = 100;
    ScheduleReport report = CampaignScheduler(config).run();
    ASSERT_EQ(report.shards.size(), 3u);
    for (const ShardOutcome &shard : report.shards) {
        CampaignConfig single = config.campaign;
        single.dialect = shard.dialect;
        CampaignStats direct = CampaignRunner(single).run();
        EXPECT_EQ(shard.stats.bugsDetected, direct.bugsDetected)
            << shard.dialect;
        EXPECT_EQ(shard.stats.checksValid, direct.checksValid)
            << shard.dialect;
        EXPECT_EQ(shard.stats.prioritizedBugs.size(),
                  direct.prioritizedBugs.size())
            << shard.dialect;
    }
    // Dialect mode never dedups across dialects: merged keeps every
    // shard's prioritized bug.
    size_t shard_total = 0;
    for (const ShardOutcome &shard : report.shards)
        shard_total += shard.stats.prioritizedBugs.size();
    EXPECT_EQ(report.merged.prioritizedBugs.size(), shard_total);
}

TEST(CampaignStatsTest, MergeSumsCountersAndUnionsPlans)
{
    CampaignStats a;
    a.setupGenerated = 10;
    a.setupSucceeded = 8;
    a.checksAttempted = 100;
    a.checksValid = 60;
    a.bugsDetected = 3;
    a.planFingerprints = {1, 2, 3};
    a.prioritizedBugs.resize(1);

    CampaignStats b;
    b.setupGenerated = 5;
    b.setupSucceeded = 5;
    b.checksAttempted = 50;
    b.checksValid = 40;
    b.bugsDetected = 1;
    b.planFingerprints = {3, 4};
    b.prioritizedBugs.resize(2);

    a.merge(b);
    EXPECT_EQ(a.setupGenerated, 15u);
    EXPECT_EQ(a.setupSucceeded, 13u);
    EXPECT_EQ(a.checksAttempted, 150u);
    EXPECT_EQ(a.checksValid, 100u);
    EXPECT_EQ(a.bugsDetected, 4u);
    EXPECT_EQ(a.planFingerprints, (std::set<uint64_t>{1, 2, 3, 4}));
    EXPECT_EQ(a.prioritizedBugs.size(), 3u);
}

} // namespace
} // namespace sqlpp
