/**
 * @file
 * Internal schema-model tests (paper Fig. 3 semantics).
 */
#include <gtest/gtest.h>

#include "core/schema_model.h"

namespace sqlpp {
namespace {

ModelTable
table(const std::string &name, bool is_view = false)
{
    ModelTable out;
    out.name = name;
    out.isView = is_view;
    out.columns.push_back({"c0", DataType::Int, false, false, false});
    return out;
}

TEST(SchemaModelTest, AddAndLookup)
{
    SchemaModel model;
    EXPECT_FALSE(model.hasTable("t0"));
    model.addTable(table("t0"));
    EXPECT_TRUE(model.hasTable("t0"));
    ASSERT_NE(model.table("t0"), nullptr);
    EXPECT_EQ(model.table("t0")->columns.size(), 1u);
    EXPECT_EQ(model.table("zzz"), nullptr);
}

TEST(SchemaModelTest, CountsSeparateViewsFromTables)
{
    SchemaModel model;
    model.addTable(table("t0"));
    model.addTable(table("v0", /*is_view=*/true));
    EXPECT_EQ(model.tableCount(false), 1u);
    EXPECT_EQ(model.tableCount(true), 1u);
}

TEST(SchemaModelTest, DropTableRemovesItsIndexes)
{
    SchemaModel model;
    model.addTable(table("t0"));
    model.addIndex({"i0", "t0"});
    model.addIndex({"i1", "t0"});
    EXPECT_EQ(model.indexCount(), 2u);
    model.dropTable("t0");
    EXPECT_FALSE(model.hasTable("t0"));
    EXPECT_EQ(model.indexCount(), 0u);
}

TEST(SchemaModelTest, DropIndex)
{
    SchemaModel model;
    model.addTable(table("t0"));
    model.addIndex({"i0", "t0"});
    model.dropIndex("i0");
    EXPECT_EQ(model.indexCount(), 0u);
}

TEST(SchemaModelTest, FreeNamesNeverRepeat)
{
    SchemaModel model;
    std::string first = model.freeName("t");
    model.addTable(table(first));
    std::string second = model.freeName("t");
    EXPECT_NE(first, second);
    model.addTable(table(second));
    model.dropTable(first);
    // Dropped names are not reused (monotone counter).
    EXPECT_NE(model.freeName("t"), first);
}

TEST(SchemaModelTest, NoteInsertAccumulates)
{
    SchemaModel model;
    model.addTable(table("t0"));
    model.noteInsert("t0", 3);
    model.noteInsert("t0", 2);
    EXPECT_EQ(model.table("t0")->assumedRows, 5u);
    model.noteInsert("missing", 1); // silently ignored
}

TEST(SchemaModelTest, RandomSelectionRespectsFilters)
{
    SchemaModel model;
    Rng rng(7);
    EXPECT_FALSE(model.randomTable(rng, true).has_value());
    EXPECT_FALSE(model.randomBaseTable(rng).has_value());
    EXPECT_FALSE(model.randomIndex(rng).has_value());

    model.addTable(table("v0", /*is_view=*/true));
    EXPECT_FALSE(model.randomBaseTable(rng).has_value());
    EXPECT_TRUE(model.randomTable(rng, true).has_value());
    EXPECT_FALSE(model.randomTable(rng, false).has_value());

    model.addTable(table("t0"));
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(*model.randomBaseTable(rng), "t0");
}

} // namespace
} // namespace sqlpp
