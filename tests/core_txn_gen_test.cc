/**
 * @file
 * Transaction-schedule generator tests: determinism, well-formedness,
 * the guaranteed fault windows, and the vocabulary restrictions that
 * keep single-session faults out of interleaved schedules.
 */
#include <gtest/gtest.h>

#include "core/txn_gen.h"
#include "parser/parser.h"
#include "util/strutil.h"

namespace sqlpp {
namespace {

TEST(TxnGenTest, DeterministicPerSalt)
{
    for (uint64_t salt : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
        TxnSchedule a = generateTxnSchedule(salt);
        TxnSchedule b = generateTxnSchedule(salt);
        EXPECT_EQ(renderTxnSchedule(a), renderTxnSchedule(b));
    }
    EXPECT_NE(renderTxnSchedule(generateTxnSchedule(1)),
              renderTxnSchedule(generateTxnSchedule(2)));
}

TEST(TxnGenTest, WellFormedSessions)
{
    for (uint64_t salt = 0; salt < 200; ++salt) {
        TxnSchedule schedule = generateTxnSchedule(salt);
        ASSERT_GE(schedule.sessions, 2u);
        ASSERT_LE(schedule.sessions, 3u);
        EXPECT_FALSE(schedule.finalQuery.empty());
        // Per session: first statement BEGIN, last COMMIT/ROLLBACK,
        // exactly one of each, everything parseable.
        for (size_t s = 0; s < schedule.sessions; ++s) {
            std::vector<std::string> script;
            for (const TxnStep &step : schedule.steps) {
                if (step.session == s)
                    script.push_back(step.sql);
            }
            ASSERT_GE(script.size(), 2u) << "salt " << salt;
            EXPECT_EQ(script.front(), "BEGIN");
            EXPECT_TRUE(script.back() == "COMMIT" ||
                        script.back() == "ROLLBACK");
            for (size_t i = 1; i + 1 < script.size(); ++i) {
                EXPECT_NE(script[i], "BEGIN");
                EXPECT_NE(script[i], "COMMIT");
                EXPECT_NE(script[i], "ROLLBACK");
            }
        }
        for (const std::string &statement : schedule.setup)
            EXPECT_TRUE(parseStatement(statement).isOk()) << statement;
        for (const TxnStep &step : schedule.steps)
            EXPECT_TRUE(parseStatement(step.sql).isOk()) << step.sql;
    }
}

TEST(TxnGenTest, GuaranteedFaultWindows)
{
    for (uint64_t salt = 0; salt < 100; ++salt) {
        TxnSchedule schedule = generateTxnSchedule(salt);
        size_t s0_begin = 0, s0_commit = 0, s1_insert = 0,
               s1_commit = 0;
        bool s0_pred_read_after_s1_commit = false;
        bool s0_wide_read_after_s1_commit = false;
        bool s0_read_in_dirty_window = false;
        bool s0_insert = false;
        for (size_t tick = 0; tick < schedule.steps.size(); ++tick) {
            const TxnStep &step = schedule.steps[tick];
            if (step.session == 0 && step.sql == "BEGIN")
                s0_begin = tick;
            if (step.session == 0 && step.sql == "COMMIT")
                s0_commit = tick;
            if (step.session == 1 && startsWith(step.sql, "INSERT"))
                s1_insert = tick;
            if (step.session == 1 && step.sql == "COMMIT")
                s1_commit = tick;
        }
        for (size_t tick = 0; tick < schedule.steps.size(); ++tick) {
            const TxnStep &step = schedule.steps[tick];
            if (step.session != 0)
                continue;
            if (step.isRead && tick > s1_insert && tick < s1_commit &&
                step.sql.find("WHERE") == std::string::npos)
                s0_read_in_dirty_window = true;
            if (step.isRead && tick > s1_commit) {
                if (step.sql.find("WHERE") != std::string::npos)
                    s0_pred_read_after_s1_commit = true;
                else
                    s0_wide_read_after_s1_commit = true;
            }
            if (startsWith(step.sql, "INSERT"))
                s0_insert = true;
        }
        // The four windows (core/txn_gen.h): dirty read,
        // non-repeatable read, phantom, lost update.
        EXPECT_TRUE(s0_read_in_dirty_window) << "salt " << salt;
        EXPECT_TRUE(s0_wide_read_after_s1_commit) << "salt " << salt;
        EXPECT_TRUE(s0_pred_read_after_s1_commit) << "salt " << salt;
        EXPECT_TRUE(s0_insert) << "salt " << salt;
        EXPECT_GT(s0_commit, s1_commit) << "salt " << salt;
        EXPECT_GT(s1_insert, s0_begin) << "salt " << salt;
    }
}

TEST(TxnGenTest, VocabularyExcludesSingleSessionFaultTriggers)
{
    // The schedule vocabulary must be too narrow for any of the 22
    // single-session faults to fire (keeps the ISO matrix column
    // clean): no NULLs, no indexes/joins/aggregates beyond COUNT, no
    // NOT / LIKE / DISTINCT / GROUP BY / text comparisons.
    const char *banned[] = {"NULL",  "INDEX",    "JOIN",  "SUM",
                            "NOT ",  "LIKE",     "DISTINCT",
                            "GROUP", "REPLACE",  "NULLIF", "<=>",
                            "IS ",   "'"};
    for (uint64_t salt = 0; salt < 100; ++salt) {
        TxnSchedule schedule = generateTxnSchedule(salt);
        std::vector<std::string> all = schedule.setup;
        for (const TxnStep &step : schedule.steps)
            all.push_back(step.sql);
        all.push_back(schedule.finalQuery);
        for (const std::string &statement : all) {
            for (const char *needle : banned) {
                EXPECT_EQ(statement.find(needle), std::string::npos)
                    << statement << " contains " << needle;
            }
        }
    }
}

TEST(TxnGenTest, RenderIsTickAnnotated)
{
    TxnSchedule schedule = generateTxnSchedule(7);
    std::vector<std::string> lines = renderTxnSchedule(schedule);
    ASSERT_GE(lines.size(), schedule.steps.size() + 2);
    EXPECT_TRUE(startsWith(lines.front(), "txn-schedule sessions="));
    EXPECT_TRUE(startsWith(lines[1], "setup: CREATE TABLE"));
    bool saw_tick = false;
    for (const std::string &line : lines) {
        if (startsWith(line, "t0"))
            saw_tick = true;
    }
    EXPECT_TRUE(saw_tick);
    EXPECT_TRUE(startsWith(lines.back(), "final: SELECT"));
}

} // namespace
} // namespace sqlpp
