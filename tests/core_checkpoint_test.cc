/**
 * @file
 * Checkpoint/resume tests: payload round-trips must be lossless, the
 * checkpoint file must survive process death (atomic rewrite), and a
 * resumed run must merge to CampaignStats bit-identical to an
 * uninterrupted run for any worker count.
 */
#include <gtest/gtest.h>

#include <filesystem>

#include "core/checkpoint.h"
#include "core/scheduler.h"

namespace sqlpp {
namespace {

std::string
tempPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

CampaignConfig
smallCampaign()
{
    CampaignConfig config;
    config.dialect = "sqlite-like";
    config.seed = 7;
    config.checks = 120;
    config.setupStatements = 30;
    config.oracles = {"TLP", "NOREC"};
    config.feedback.updateInterval = 50;
    return config;
}

SchedulerConfig
smallSchedule(size_t workers)
{
    SchedulerConfig config;
    config.mode = ScheduleMode::SliceChecks;
    config.workers = workers;
    config.slices = 4;
    config.campaign = smallCampaign();
    return config;
}

TEST(CheckpointTest, ShardPayloadRoundTripsLosslessly)
{
    CampaignRunner runner(smallCampaign());
    CampaignStats stats = runner.run();
    ASSERT_GT(stats.checksAttempted, 0u);

    KvStore payload = checkpointShard(stats, runner.feedback(),
                                      runner.registry(), 3, 1.5);
    RestoredShard restored;
    Status status = restoreShard(payload, FeedbackConfig{}, restored);
    ASSERT_TRUE(status.isOk()) << status.toString();

    EXPECT_TRUE(restored.stats == stats);
    EXPECT_EQ(restored.workerIndex, 3u);
    EXPECT_DOUBLE_EQ(restored.seconds, 1.5);
    EXPECT_EQ(restored.feedback.recorded(),
              runner.feedback().recorded());
}

TEST(CheckpointTest, FileRoundTripPreservesShards)
{
    std::string path = tempPath("sqlpp_ckpt_roundtrip.kv");
    CampaignCheckpoint checkpoint;
    checkpoint.configFingerprint = 0xdeadbeefcafef00dULL;
    checkpoint.totalShards = 3;
    checkpoint.shards[0].put("stats.checksAttempted", "5");
    checkpoint.shards[2].put("bug.0.dialect", "sqlite-like");
    ASSERT_TRUE(checkpoint.saveTo(path).isOk());

    CampaignCheckpoint loaded;
    ASSERT_TRUE(loaded.loadFrom(path).isOk());
    EXPECT_EQ(loaded.configFingerprint, checkpoint.configFingerprint);
    EXPECT_EQ(loaded.totalShards, 3u);
    ASSERT_EQ(loaded.shards.size(), 2u);
    EXPECT_EQ(*loaded.shards[0].get("stats.checksAttempted"), "5");
    EXPECT_EQ(*loaded.shards[2].get("bug.0.dialect"), "sqlite-like");
    std::filesystem::remove(path);
}

TEST(CheckpointTest, LoadRejectsForeignFiles)
{
    std::string path = tempPath("sqlpp_ckpt_foreign.kv");
    KvStore store;
    store.put("unrelated", "content");
    ASSERT_TRUE(store.save(path).isOk());
    CampaignCheckpoint checkpoint;
    EXPECT_FALSE(checkpoint.loadFrom(path).isOk());
    std::filesystem::remove(path);
}

TEST(CheckpointTest, CheckpointedRunMatchesPlainRun)
{
    std::string path = tempPath("sqlpp_ckpt_match.kv");
    std::filesystem::remove(path);

    ScheduleReport plain = CampaignScheduler(smallSchedule(1)).run();

    SchedulerConfig writing = smallSchedule(1);
    writing.checkpointPath = path;
    ScheduleReport written = CampaignScheduler(writing).run();

    EXPECT_TRUE(plain.merged == written.merged);
    EXPECT_TRUE(std::filesystem::exists(path));
    std::filesystem::remove(path);
}

TEST(CheckpointTest, PartialResumeReproducesUninterruptedStats)
{
    std::string path = tempPath("sqlpp_ckpt_partial.kv");
    std::filesystem::remove(path);

    ScheduleReport reference = CampaignScheduler(smallSchedule(1)).run();

    SchedulerConfig writing = smallSchedule(1);
    writing.checkpointPath = path;
    ASSERT_TRUE(CampaignScheduler(writing)
                    .run()
                    .merged == reference.merged);

    // Simulate a kill that lost shards 1 and 3: drop them from the
    // file, then resume. The resumed run must re-run exactly those
    // shards and merge to identical stats.
    CampaignCheckpoint checkpoint;
    ASSERT_TRUE(checkpoint.loadFrom(path).isOk());
    ASSERT_EQ(checkpoint.shards.size(), 4u);
    checkpoint.shards.erase(1);
    checkpoint.shards.erase(3);
    ASSERT_TRUE(checkpoint.saveTo(path).isOk());

    SchedulerConfig resuming = writing;
    resuming.resume = true;
    ScheduleReport resumed = CampaignScheduler(resuming).run();
    EXPECT_TRUE(resumed.merged == reference.merged);
    EXPECT_EQ(resumed.shardsFromCheckpoint, 2u);
    ASSERT_EQ(resumed.shards.size(), 4u);
    EXPECT_TRUE(resumed.shards[0].fromCheckpoint);
    EXPECT_FALSE(resumed.shards[1].fromCheckpoint);
    std::filesystem::remove(path);
}

TEST(CheckpointTest, ResumeIsBitIdenticalForOneTwoFourWorkers)
{
    ScheduleReport reference = CampaignScheduler(smallSchedule(1)).run();
    for (size_t workers : {1u, 2u, 4u}) {
        std::string path = tempPath("sqlpp_ckpt_workers.kv");
        std::filesystem::remove(path);

        SchedulerConfig writing = smallSchedule(workers);
        writing.checkpointPath = path;
        ScheduleReport written = CampaignScheduler(writing).run();
        EXPECT_TRUE(written.merged == reference.merged)
            << workers << " workers (write pass)";

        SchedulerConfig resuming = writing;
        resuming.resume = true;
        ScheduleReport resumed = CampaignScheduler(resuming).run();
        EXPECT_TRUE(resumed.merged == reference.merged)
            << workers << " workers (resume pass)";
        EXPECT_EQ(resumed.shardsFromCheckpoint, 4u);
        std::filesystem::remove(path);
    }
}

TEST(CheckpointTest, PqsCampaignIsBitIdenticalForOneTwoFourWorkers)
{
    // PQS adds per-oracle bug tallies, inapplicable-check counts and
    // per-bug query lists to the shard payload (checkpoint format v2);
    // all of them must survive the checkpoint round-trip and merge
    // identically for any worker count.
    CampaignConfig campaign = smallCampaign();
    campaign.oracles = {"TLP", "NOREC", "PQS"};

    SchedulerConfig base = smallSchedule(1);
    base.campaign = campaign;
    ScheduleReport reference = CampaignScheduler(base).run();
    EXPECT_GT(reference.merged.checksInapplicable, 0u);

    for (size_t workers : {1u, 2u, 4u}) {
        std::string path = tempPath("sqlpp_ckpt_pqs.kv");
        std::filesystem::remove(path);

        SchedulerConfig writing = smallSchedule(workers);
        writing.campaign = campaign;
        writing.checkpointPath = path;
        ScheduleReport written = CampaignScheduler(writing).run();
        EXPECT_TRUE(written.merged == reference.merged)
            << workers << " workers (write pass)";

        SchedulerConfig resuming = writing;
        resuming.resume = true;
        ScheduleReport resumed = CampaignScheduler(resuming).run();
        EXPECT_TRUE(resumed.merged == reference.merged)
            << workers << " workers (resume pass)";
        EXPECT_EQ(resumed.shardsFromCheckpoint, 4u);
        EXPECT_EQ(resumed.merged.bugsByOracle,
                  reference.merged.bugsByOracle);
        std::filesystem::remove(path);
    }
}

TEST(CheckpointTest, FourOracleCampaignIsBitIdenticalForOneTwoFourWorkers)
{
    // The full oracle battery (TLP, NoREC, PQS, EET). EET adds its own
    // Inapplicable outcomes (dialects without its wrapper operators)
    // and per-oracle tallies; a four-oracle campaign must still merge
    // bit-identically for any worker count and across a resume.
    CampaignConfig campaign = smallCampaign();
    campaign.oracles = {"TLP", "NOREC", "PQS", "EET"};

    SchedulerConfig base = smallSchedule(1);
    base.campaign = campaign;
    ScheduleReport reference = CampaignScheduler(base).run();

    for (size_t workers : {1u, 2u, 4u}) {
        std::string path = tempPath("sqlpp_ckpt_eet.kv");
        std::filesystem::remove(path);

        SchedulerConfig writing = smallSchedule(workers);
        writing.campaign = campaign;
        writing.checkpointPath = path;
        ScheduleReport written = CampaignScheduler(writing).run();
        EXPECT_TRUE(written.merged == reference.merged)
            << workers << " workers (write pass)";

        SchedulerConfig resuming = writing;
        resuming.resume = true;
        ScheduleReport resumed = CampaignScheduler(resuming).run();
        EXPECT_TRUE(resumed.merged == reference.merged)
            << workers << " workers (resume pass)";
        EXPECT_EQ(resumed.shardsFromCheckpoint, 4u);
        EXPECT_EQ(resumed.merged.bugsByOracle,
                  reference.merged.bugsByOracle);
        std::filesystem::remove(path);
    }
}

TEST(CheckpointTest, FiveOracleCampaignIsBitIdenticalForOneTwoFourWorkers)
{
    // The full battery including ISO. The isolation oracle runs whole
    // interleaving schedules per check (derived from the handed query
    // shape by the salt idiom) and reports Inapplicable on dialects
    // without transactions; both its tallies and its determinism must
    // survive sharding, checkpointing and resume — the regenerated
    // schedules on a resumed shard are the same interleavings the
    // killed run would have executed.
    CampaignConfig campaign = smallCampaign();
    campaign.oracles = {"TLP", "NOREC", "PQS", "EET", "ISO"};

    SchedulerConfig base = smallSchedule(1);
    base.campaign = campaign;
    ScheduleReport reference = CampaignScheduler(base).run();

    for (size_t workers : {1u, 2u, 4u}) {
        std::string path = tempPath("sqlpp_ckpt_iso.kv");
        std::filesystem::remove(path);

        SchedulerConfig writing = smallSchedule(workers);
        writing.campaign = campaign;
        writing.checkpointPath = path;
        ScheduleReport written = CampaignScheduler(writing).run();
        EXPECT_TRUE(written.merged == reference.merged)
            << workers << " workers (write pass)";

        SchedulerConfig resuming = writing;
        resuming.resume = true;
        ScheduleReport resumed = CampaignScheduler(resuming).run();
        EXPECT_TRUE(resumed.merged == reference.merged)
            << workers << " workers (resume pass)";
        EXPECT_EQ(resumed.shardsFromCheckpoint, 4u);
        EXPECT_EQ(resumed.merged.bugsByOracle,
                  reference.merged.bugsByOracle);
        std::filesystem::remove(path);
    }
}

TEST(CheckpointTest, GuidedStateRoundTripsThroughShardPayload)
{
    // Checkpoint format v3 carries the bandit's arm counters
    // (guidedPulls / guidedRewarded) beside the validity counters, so
    // a resumed guided shard scores arms exactly as the killed run
    // would have.
    CampaignConfig config = smallCampaign();
    config.guidance.mode = GuidanceMode::Ucb;
    CampaignRunner runner(config);
    CampaignStats stats = runner.run();
    ASSERT_GT(stats.checksAttempted, 0u);

    const FeedbackTracker &feedback = runner.feedback();
    const FeatureRegistry &registry = runner.registry();
    uint64_t pulls = 0;
    for (FeatureId id = 0; id < registry.size(); ++id)
        pulls += feedback.stats(id).guidedPulls;
    ASSERT_GT(pulls, 0u) << "guided campaign recorded no pulls";

    KvStore payload =
        checkpointShard(stats, feedback, registry, 0, 0.0);
    RestoredShard restored;
    ASSERT_TRUE(restoreShard(payload, FeedbackConfig{}, restored).isOk());
    EXPECT_TRUE(restored.stats == stats);
    for (FeatureId id = 0; id < registry.size(); ++id) {
        const std::string &name = registry.name(id);
        FeatureId theirs = restored.registry.find(name);
        const FeatureStats &mine = feedback.stats(id);
        if (theirs == FeatureId(-1)) {
            // Dropped features carried no merge-relevant state.
            EXPECT_EQ(mine.executions, 0u) << name;
            EXPECT_EQ(mine.guidedPulls, 0u) << name;
            continue;
        }
        EXPECT_EQ(restored.feedback.stats(theirs).guidedPulls,
                  mine.guidedPulls)
            << name;
        EXPECT_EQ(restored.feedback.stats(theirs).guidedRewarded,
                  mine.guidedRewarded)
            << name;
    }
}

TEST(CheckpointTest, V2CheckpointsStillLoad)
{
    // A pre-guidance (v2) checkpoint must keep loading: the fields v2
    // predates — arm counters, per-sample plan counts — restore to
    // zero, so a v2 resume of a guided campaign starts the bandit
    // fresh instead of failing.
    std::string path = tempPath("sqlpp_ckpt_v2.kv");
    CampaignCheckpoint checkpoint;
    checkpoint.configFingerprint = 42;
    checkpoint.totalShards = 1;
    checkpoint.shards[0].put("stats.checksAttempted", "5");
    ASSERT_TRUE(checkpoint.saveTo(path).isOk());

    // Rewrite the file's format marker to the older versions.
    for (const char *format : {"sqlancerpp-checkpoint-v1",
                               "sqlancerpp-checkpoint-v2"}) {
        KvStore raw;
        ASSERT_TRUE(raw.load(path).isOk());
        raw.put("meta.format", format);
        ASSERT_TRUE(raw.save(path).isOk());
        CampaignCheckpoint loaded;
        ASSERT_TRUE(loaded.loadFrom(path).isOk()) << format;
        EXPECT_EQ(loaded.configFingerprint, 42u) << format;
    }
    // Unknown future formats are still rejected.
    KvStore raw;
    ASSERT_TRUE(raw.load(path).isOk());
    raw.put("meta.format", "sqlancerpp-checkpoint-v99");
    ASSERT_TRUE(raw.save(path).isOk());
    CampaignCheckpoint rejected;
    EXPECT_FALSE(rejected.loadFrom(path).isOk());
    std::filesystem::remove(path);
}

TEST(CheckpointTest, GuidedCampaignIsBitIdenticalForOneTwoFourWorkers)
{
    // The guided bandit must not break the share-nothing determinism
    // story: each shard's selector is seeded from the campaign seed
    // and fed only shard-local novelty, so guided campaigns merge
    // bit-identically for any worker count and across a kill/resume.
    CampaignConfig campaign = smallCampaign();
    campaign.guidance.mode = GuidanceMode::Ucb;

    SchedulerConfig base = smallSchedule(1);
    base.campaign = campaign;
    ScheduleReport reference = CampaignScheduler(base).run();

    for (size_t workers : {1u, 2u, 4u}) {
        std::string path = tempPath("sqlpp_ckpt_guided.kv");
        std::filesystem::remove(path);

        SchedulerConfig writing = smallSchedule(workers);
        writing.campaign = campaign;
        writing.checkpointPath = path;
        ScheduleReport written = CampaignScheduler(writing).run();
        EXPECT_TRUE(written.merged == reference.merged)
            << workers << " workers (write pass)";

        SchedulerConfig resuming = writing;
        resuming.resume = true;
        ScheduleReport resumed = CampaignScheduler(resuming).run();
        EXPECT_TRUE(resumed.merged == reference.merged)
            << workers << " workers (resume pass)";
        EXPECT_EQ(resumed.shardsFromCheckpoint, 4u);
        std::filesystem::remove(path);
    }
}

TEST(CheckpointTest, CurveSamplesSurviveTheShardPayload)
{
    // v3 curve samples carry the cumulative unique-plan count (field
    // 7); the payload round-trip must preserve the whole trajectory.
    CampaignConfig config = smallCampaign();
    config.guidance.mode = GuidanceMode::Ucb;
    config.curveInterval = 25;
    CampaignRunner runner(config);
    CampaignStats stats = runner.run();
    ASSERT_GT(stats.curve.size(), 1u);
    EXPECT_GT(stats.curve.back().cumPlans, 0u);

    KvStore payload = checkpointShard(stats, runner.feedback(),
                                      runner.registry(), 0, 0.0);
    RestoredShard restored;
    ASSERT_TRUE(restoreShard(payload, FeedbackConfig{}, restored).isOk());
    ASSERT_EQ(restored.stats.curve.size(), stats.curve.size());
    for (size_t i = 0; i < stats.curve.size(); ++i)
        EXPECT_TRUE(restored.stats.curve[i] == stats.curve[i]) << i;
}

TEST(CheckpointTest, MismatchedConfigurationStartsFresh)
{
    std::string path = tempPath("sqlpp_ckpt_mismatch.kv");
    std::filesystem::remove(path);

    SchedulerConfig writing = smallSchedule(1);
    writing.checkpointPath = path;
    (void)CampaignScheduler(writing).run();

    SchedulerConfig different = writing;
    different.campaign.seed = 999;
    different.resume = true;
    ScheduleReport report = CampaignScheduler(different).run();
    // Nothing restored: the checkpoint belongs to another campaign.
    EXPECT_EQ(report.shardsFromCheckpoint, 0u);

    SchedulerConfig plain = smallSchedule(1);
    plain.campaign.seed = 999;
    ScheduleReport reference = CampaignScheduler(plain).run();
    EXPECT_TRUE(report.merged == reference.merged);
    std::filesystem::remove(path);
}

} // namespace
} // namespace sqlpp
