/**
 * @file
 * Batch differential self-check: the columnar batch pipeline must be
 * observationally identical to the row-at-a-time optimized pipeline.
 *
 * ExecMode::Batch shares the optimizer with ExecMode::Optimized and
 * differs only in how SCAN/FILT/PROJ move rows, so on a fault-free
 * engine every generated SELECT must produce the same result multiset,
 * the same error class on failure, and the same plan fingerprint. This
 * is the standing detector for vectorized-kernel semantics drift: any
 * divergence between a kernel and eval.cc (three-valued logic, numeric
 * coercion, overflow, LIKE) surfaces here as a mismatch.
 */
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/feedback.h"
#include "core/generator.h"
#include "core/rewrite.h"
#include "dialect/profile.h"
#include "engine/database.h"
#include "parser/parser.h"
#include "sqlir/printer.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/strutil.h"

namespace sqlpp {
namespace {

constexpr size_t kSeeds = 200;
constexpr size_t kSetupStatements = 10;
constexpr size_t kSelectsPerSeed = 6;

/**
 * Both pipelines run the same plan under the same budget and the batch
 * path charges identically on error-free statements, but an error-path
 * chunk is re-run row-major (double-charged), so a budget error on
 * either side skips the pair. Everything else must match exactly.
 */
bool
isBudgetSkip(const Status &status)
{
    return !status.isOk() &&
           status.code() == ErrorCode::BudgetExhausted;
}

TEST(EngineBatchDifferentialTest, BatchMatchesOptimizedOnFaultFreeEngine)
{
    const DialectProfile *profile = findDialect("postgres-like");
    ASSERT_NE(profile, nullptr);

    size_t selects_generated = 0;
    size_t pairs_compared = 0;
    size_t pairs_skipped = 0;

    for (size_t seed = 1; seed <= kSeeds; ++seed) {
        EngineConfig engine_config;
        engine_config.behavior = profile->behavior;
        engine_config.faults = FaultSet(); // fault-free: ground truth
        Database db(engine_config);

        FeatureRegistry registry;
        OpenGate gate;
        SchemaModel model;
        GeneratorConfig generator_config;
        generator_config.seed = seed * 0x9e3779b97f4a7c15ULL + 1;
        AdaptiveGenerator generator(generator_config, registry, gate,
                                    model);

        for (size_t i = 0; i < kSetupStatements; ++i) {
            GeneratedStatement stmt =
                generator.generateSetupStatement();
            auto result = db.execute(stmt.text);
            generator.noteExecution(stmt, result.isOk());
        }

        for (size_t i = 0; i < kSelectsPerSeed; ++i) {
            GeneratedStatement stmt = generator.generateSelect();
            ++selects_generated;
            auto parsed = parseStatement(stmt.text);
            ASSERT_TRUE(parsed.isOk())
                << "generator emitted unparseable SQL (seed " << seed
                << "): " << stmt.text;

            auto optimized =
                db.executeStmt(*parsed.value(), ExecMode::Optimized);
            uint64_t optimized_plan = db.lastPlanFingerprint();
            auto batch =
                db.executeStmt(*parsed.value(), ExecMode::Batch);
            uint64_t batch_plan = db.lastPlanFingerprint();

            if (isBudgetSkip(optimized.status()) ||
                isBudgetSkip(batch.status())) {
                ++pairs_skipped;
                continue;
            }
            if (!optimized.isOk() || !batch.isOk()) {
                // Same plan, same rows, same evaluation semantics:
                // both modes must fail on the same statement with the
                // same error class.
                EXPECT_FALSE(optimized.isOk())
                    << "batch failed but optimized succeeded (seed "
                    << seed << "): " << stmt.text
                    << "\n  batch: " << batch.status().toString();
                EXPECT_FALSE(batch.isOk())
                    << "optimized failed but batch succeeded (seed "
                    << seed << "): " << stmt.text << "\n  optimized: "
                    << optimized.status().toString();
                if (!optimized.isOk() && !batch.isOk()) {
                    EXPECT_EQ(optimized.status().code(),
                              batch.status().code())
                        << "error classes diverge (seed " << seed
                        << "): " << stmt.text << "\n  optimized: "
                        << optimized.status().toString()
                        << "\n  batch: " << batch.status().toString();
                }
                ++pairs_compared;
                continue;
            }
            // Batch mode runs the optimizer unchanged, so the plan
            // fingerprint — the coverage signal campaigns steer by —
            // must be identical, not merely the results.
            EXPECT_EQ(optimized_plan, batch_plan)
                << "plan fingerprints diverge (seed " << seed
                << "): " << stmt.text;
            EXPECT_TRUE(
                optimized.value().sameRowMultiset(batch.value()))
                << "result multisets diverge (seed " << seed
                << "): " << stmt.text << "\noptimized:\n"
                << optimized.value().toString() << "batch:\n"
                << batch.value().toString();
            ++pairs_compared;
        }
    }

    // The control experiment is meaningless if skips eat the corpus;
    // demand that the vast majority of generated SELECTs really were
    // compared end to end.
    EXPECT_EQ(selects_generated, kSeeds * kSelectsPerSeed);
    EXPECT_GE(pairs_compared, (selects_generated * 9) / 10)
        << "too many budget skips: " << pairs_skipped;
}

/**
 * The same differential over EET-rewritten queries: the wrapper idioms
 * the rewriter emits (`p AND TRUE`, `NOT (NOT (p))`, `(p) IS TRUE`,
 * tautology conjuncts with scanned min/max literals) must evaluate
 * identically in vec_eval.cc kernels and eval.cc — both in WHERE
 * position and projected as values. A kernel that short-cuts one of
 * these shapes (e.g. folding the double NOT without three-valued
 * logic) would not only diverge here, it would desynchronize the EET
 * oracle's two lanes between execution modes.
 */
TEST(EngineBatchDifferentialTest, BatchMatchesOptimizedOnEetRewrites)
{
    const DialectProfile *profile = findDialect("postgres-like");
    ASSERT_NE(profile, nullptr);

    size_t rewrites_compared = 0;
    size_t pairs_skipped = 0;

    for (size_t seed = 1; seed <= 100; ++seed) {
        EngineConfig engine_config;
        engine_config.behavior = profile->behavior;
        engine_config.faults = FaultSet();
        Database db(engine_config);

        FeatureRegistry registry;
        OpenGate gate;
        SchemaModel model;
        GeneratorConfig generator_config;
        generator_config.seed = seed * 0x9e3779b97f4a7c15ULL + 3;
        AdaptiveGenerator generator(generator_config, registry, gate,
                                    model);

        for (size_t i = 0; i < kSetupStatements; ++i) {
            GeneratedStatement stmt =
                generator.generateSetupStatement();
            auto result = db.execute(stmt.text);
            generator.noteExecution(stmt, result.isOk());
        }

        for (size_t i = 0; i < 3; ++i) {
            auto shape = generator.generateQueryShape();
            if (!shape.has_value())
                continue;

            // Data-aware stats lane when the base shape allows it.
            EetTableStats stats;
            bool have_stats = false;
            if (eetStatsApplicable(*shape->base)) {
                auto scan = db.execute(eetStatsScanText(*shape->base));
                if (scan.isOk()) {
                    stats =
                        computeTableStats(*shape->base, scan.value());
                    have_stats = true;
                }
            }

            auto compare_modes = [&](const SelectStmt &query,
                                     const char *kind) {
                auto optimized =
                    db.executeStmt(query, ExecMode::Optimized);
                auto batch = db.executeStmt(query, ExecMode::Batch);
                if (isBudgetSkip(optimized.status()) ||
                    isBudgetSkip(batch.status())) {
                    ++pairs_skipped;
                    return;
                }
                if (!optimized.isOk() || !batch.isOk()) {
                    EXPECT_EQ(optimized.isOk(), batch.isOk())
                        << kind << " (seed " << seed
                        << "): " << printSelect(query);
                    ++rewrites_compared;
                    return;
                }
                EXPECT_TRUE(optimized.value().sameRowMultiset(
                    batch.value()))
                    << kind << " multisets diverge (seed " << seed
                    << "): " << printSelect(query);
                ++rewrites_compared;
            };

            for (const RewriteCandidate &candidate : enumerateRewrites(
                     *shape->predicate, *profile,
                     have_stats ? &stats : nullptr)) {
                SelectPtr where_lane = shape->base->cloneSelect();
                where_lane->where = candidate.expr->clone();
                compare_modes(*where_lane, candidate.kind);

                if (!exprBooleanRooted(*shape->predicate) ||
                    !shape->base->groupBy.empty() ||
                    shape->base->having != nullptr)
                    continue;
                SelectPtr value_lane = shape->base->cloneSelect();
                value_lane->items.clear();
                SelectItem item;
                item.expr = candidate.expr->clone();
                item.alias = "eet";
                value_lane->items.push_back(std::move(item));
                value_lane->distinct = false;
                value_lane->orderBy.clear();
                compare_modes(*value_lane, candidate.kind);
            }
        }
    }

    // Not vacuous: the sweep must exercise a real rewrite corpus.
    EXPECT_GE(rewrites_compared, 500u)
        << "skipped " << pairs_skipped;
}

/**
 * The differential above would pass vacuously if compileVecExpr
 * refused everything and every chunk fell back to the row evaluator.
 * Pin that a plain scan-filter-project query really engages the
 * kernels by watching the batch instrumentation counters move.
 */
TEST(EngineBatchDifferentialTest, KernelsEngageOnSimpleScanFilter)
{
#ifdef SQLPP_NO_BATCH
    GTEST_SKIP() << "batch path compiled out (SQLPP_BATCH=OFF)";
#else
    Database db;
    ASSERT_TRUE(db.execute("CREATE TABLE t (a INT, b INT)").isOk());
    for (int i = 0; i < 64; ++i) {
        ASSERT_TRUE(db.execute(format("INSERT INTO t VALUES (%d, %d)",
                                      i, i * 2))
                        .isOk());
    }

    MetricsRegistry &metrics = MetricsRegistry::instance();
    uint64_t kernel_rows_before =
        metrics.counterTotal("campaign.exec.batch.rows.kernel");
    uint64_t compiled_before =
        metrics.counterTotal("campaign.exec.batch.filter.compiled");

    auto parsed =
        parseStatement("SELECT a + b FROM t WHERE a % 3 = 0 AND b < 100");
    ASSERT_TRUE(parsed.isOk());
    auto batch = db.executeStmt(*parsed.value(), ExecMode::Batch);
    ASSERT_TRUE(batch.isOk()) << batch.status().toString();
    EXPECT_EQ(batch.value().rowCount(), 17u); // a in {0,3,...,48}

    EXPECT_GT(metrics.counterTotal("campaign.exec.batch.rows.kernel"),
              kernel_rows_before)
        << "batch mode ran but no rows went through a kernel";
    EXPECT_GT(
        metrics.counterTotal("campaign.exec.batch.filter.compiled"),
        compiled_before)
        << "WHERE conjuncts should vector-compile on this query";
#endif
}

} // namespace
} // namespace sqlpp
