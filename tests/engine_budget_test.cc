/**
 * @file
 * Execution-budget tests: BudgetMeter semantics and the budget checks
 * threaded through the executor's scan/join/sort loops and the
 * recursive evaluator.
 */
#include <gtest/gtest.h>

#include "dialect/connection.h"
#include "engine/budget.h"
#include "engine/database.h"

namespace sqlpp {
namespace {

Database
makeDb(StepBudget budget)
{
    EngineConfig config;
    config.budget = budget;
    return Database(std::move(config));
}

void
fillTable(Database &db, const char *table, size_t rows)
{
    ASSERT_TRUE(
        db.execute(std::string("CREATE TABLE ") + table + " (c0 INT)")
            .isOk());
    std::string insert = std::string("INSERT INTO ") + table + " VALUES ";
    for (size_t i = 0; i < rows; ++i) {
        if (i > 0)
            insert += ", ";
        insert += "(" + std::to_string(i) + ")";
    }
    ASSERT_TRUE(db.execute(insert).isOk());
}

TEST(BudgetMeterTest, ZeroLimitsAreUnlimited)
{
    BudgetMeter meter{StepBudget{0, 0, 0}};
    EXPECT_TRUE(meter.chargeSteps(1u << 20).isOk());
    EXPECT_TRUE(meter.chargeRows(1u << 20).isOk());
    EXPECT_TRUE(meter.chargeIntermediateRows(1u << 20).isOk());
}

TEST(BudgetMeterTest, ExceedingALimitReturnsBudgetExhausted)
{
    BudgetMeter meter{StepBudget{10, 5, 3}};
    EXPECT_TRUE(meter.chargeSteps(10).isOk());
    Status steps = meter.chargeSteps(1);
    EXPECT_EQ(steps.code(), ErrorCode::BudgetExhausted);
    Status rows = meter.chargeRows(6);
    EXPECT_EQ(rows.code(), ErrorCode::BudgetExhausted);
    Status intermediate = meter.chargeIntermediateRows(4);
    EXPECT_EQ(intermediate.code(), ErrorCode::BudgetExhausted);
}

TEST(BudgetTest, CrossJoinTerminatesUnderIntermediateRowBudget)
{
    // 20 x 20 x 20 = 8000 combined rows; the budget cuts the join off
    // after 100 with the distinct resource code, not a generic error.
    Database db = makeDb(StepBudget{0, 0, 100});
    fillTable(db, "t0", 20);
    fillTable(db, "t1", 20);
    fillTable(db, "t2", 20);
    auto result = db.execute("SELECT * FROM t0, t1, t2");
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::BudgetExhausted);
}

TEST(BudgetTest, StepBudgetBoundsScans)
{
    Database db = makeDb(StepBudget{10, 0, 0});
    fillTable(db, "t0", 30);
    auto result = db.execute("SELECT * FROM t0");
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::BudgetExhausted);
}

TEST(BudgetTest, RowBudgetBoundsResultSize)
{
    Database db = makeDb(StepBudget{0, 5, 0});
    fillTable(db, "t0", 30);
    auto result = db.execute("SELECT * FROM t0");
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::BudgetExhausted);
}

TEST(BudgetTest, EvaluatorStepsAreMetered)
{
    // The WHERE expression alone costs several evaluator steps per
    // row; a step budget below rows x nodes must trip inside eval.
    Database db = makeDb(StepBudget{40, 0, 0});
    fillTable(db, "t0", 30);
    auto result = db.execute(
        "SELECT * FROM t0 WHERE c0 + 1 * 2 - 3 > 0 AND c0 < 100");
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::BudgetExhausted);
}

TEST(BudgetTest, DefaultBudgetPreservesBehaviour)
{
    Database db;
    fillTable(db, "t0", 30);
    fillTable(db, "t1", 30);
    auto result =
        db.execute("SELECT * FROM t0, t1 WHERE t0.c0 = t1.c0");
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    EXPECT_EQ(result.value().rowCount(), 30u);
}

TEST(BudgetTest, ConnectionCountsBudgetFailuresAsResourceErrors)
{
    const DialectProfile *profile = findDialect("sqlite-like");
    ASSERT_NE(profile, nullptr);
    ConnectionOptions options;
    options.budget.maxSteps = 10;
    Connection connection(*profile, options);
    ASSERT_TRUE(
        connection.execute("CREATE TABLE t0 (c0 INT)").isOk());
    ASSERT_TRUE(connection
                    .execute("INSERT INTO t0 VALUES (1), (2), (3), "
                             "(4), (5), (6), (7), (8), (9), (10), "
                             "(11), (12)")
                    .isOk());
    auto result = connection.execute("SELECT * FROM t0");
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::BudgetExhausted);
    EXPECT_EQ(connection.resourceErrors(), 1u);
}

} // namespace
} // namespace sqlpp
