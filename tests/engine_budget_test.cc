/**
 * @file
 * Execution-budget tests: BudgetMeter semantics and the budget checks
 * threaded through the executor's scan/join/sort loops and the
 * recursive evaluator.
 */
#include <gtest/gtest.h>

#include "dialect/connection.h"
#include "engine/budget.h"
#include "engine/database.h"
#include "parser/parser.h"

namespace sqlpp {
namespace {

Database
makeDb(StepBudget budget)
{
    EngineConfig config;
    config.budget = budget;
    return Database(std::move(config));
}

void
fillTable(Database &db, const char *table, size_t rows)
{
    ASSERT_TRUE(
        db.execute(std::string("CREATE TABLE ") + table + " (c0 INT)")
            .isOk());
    std::string insert = std::string("INSERT INTO ") + table + " VALUES ";
    for (size_t i = 0; i < rows; ++i) {
        if (i > 0)
            insert += ", ";
        insert += "(" + std::to_string(i) + ")";
    }
    ASSERT_TRUE(db.execute(insert).isOk());
}

TEST(BudgetMeterTest, ZeroLimitsAreUnlimited)
{
    BudgetMeter meter{StepBudget{0, 0, 0}};
    EXPECT_TRUE(meter.chargeSteps(1u << 20).isOk());
    EXPECT_TRUE(meter.chargeRows(1u << 20).isOk());
    EXPECT_TRUE(meter.chargeIntermediateRows(1u << 20).isOk());
}

TEST(BudgetMeterTest, ExceedingALimitReturnsBudgetExhausted)
{
    BudgetMeter meter{StepBudget{10, 5, 3}};
    EXPECT_TRUE(meter.chargeSteps(10).isOk());
    Status steps = meter.chargeSteps(1);
    EXPECT_EQ(steps.code(), ErrorCode::BudgetExhausted);
    Status rows = meter.chargeRows(6);
    EXPECT_EQ(rows.code(), ErrorCode::BudgetExhausted);
    Status intermediate = meter.chargeIntermediateRows(4);
    EXPECT_EQ(intermediate.code(), ErrorCode::BudgetExhausted);
}

TEST(BudgetTest, CrossJoinTerminatesUnderIntermediateRowBudget)
{
    // 20 x 20 x 20 = 8000 combined rows; the budget cuts the join off
    // after 100 with the distinct resource code, not a generic error.
    Database db = makeDb(StepBudget{0, 0, 100});
    fillTable(db, "t0", 20);
    fillTable(db, "t1", 20);
    fillTable(db, "t2", 20);
    auto result = db.execute("SELECT * FROM t0, t1, t2");
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::BudgetExhausted);
}

TEST(BudgetTest, StepBudgetBoundsScans)
{
    Database db = makeDb(StepBudget{10, 0, 0});
    fillTable(db, "t0", 30);
    auto result = db.execute("SELECT * FROM t0");
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::BudgetExhausted);
}

TEST(BudgetTest, RowBudgetBoundsResultSize)
{
    Database db = makeDb(StepBudget{0, 5, 0});
    fillTable(db, "t0", 30);
    auto result = db.execute("SELECT * FROM t0");
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::BudgetExhausted);
}

TEST(BudgetTest, EvaluatorStepsAreMetered)
{
    // The WHERE expression alone costs several evaluator steps per
    // row; a step budget below rows x nodes must trip inside eval.
    Database db = makeDb(StepBudget{40, 0, 0});
    fillTable(db, "t0", 30);
    auto result = db.execute(
        "SELECT * FROM t0 WHERE c0 + 1 * 2 - 3 > 0 AND c0 < 100");
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::BudgetExhausted);
}

TEST(BudgetTest, DefaultBudgetPreservesBehaviour)
{
    Database db;
    fillTable(db, "t0", 30);
    fillTable(db, "t1", 30);
    auto result =
        db.execute("SELECT * FROM t0, t1 WHERE t0.c0 = t1.c0");
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    EXPECT_EQ(result.value().rowCount(), 30u);
}

/**
 * Batch-tail budget parity. The batch pipeline charges evaluator steps
 * per batch (one chargeSteps(selection) at each kernel node) with
 * selection narrowing mirroring the row evaluator's short-circuit, so
 * on error-free statements its step total equals the row pipeline's
 * exactly. The *point* of exhaustion inside a chunk can differ by up
 * to one batch (a kernel discovers exhaustion at a node boundary, the
 * row loop mid-row) — the contract is: both modes exhaust on the same
 * statement with ErrorCode::BudgetExhausted, never one succeeding
 * where the other trips.
 */
TEST(BudgetTest, BatchModeExhaustsWhereOptimizedDoes)
{
    for (uint64_t max_steps : {10ull, 40ull, 200ull, 100000ull}) {
        Database row_db = makeDb(StepBudget{max_steps, 0, 0});
        Database batch_db = makeDb(StepBudget{max_steps, 0, 0});
        fillTable(row_db, "t0", 30);
        fillTable(batch_db, "t0", 30);
        auto parsed = parseStatement(
            "SELECT c0 + 1 FROM t0 WHERE c0 + 1 * 2 - 3 > 0 AND "
            "c0 < 100");
        ASSERT_TRUE(parsed.isOk());
        auto row =
            row_db.executeStmt(*parsed.value(), ExecMode::Optimized);
        auto batch =
            batch_db.executeStmt(*parsed.value(), ExecMode::Batch);
        EXPECT_EQ(row.isOk(), batch.isOk())
            << "maxSteps=" << max_steps << " optimized: "
            << row.status().toString()
            << " batch: " << batch.status().toString();
        if (!row.isOk() && !batch.isOk()) {
            EXPECT_EQ(row.status().code(), batch.status().code());
            EXPECT_EQ(batch.status().code(),
                      ErrorCode::BudgetExhausted);
        }
        if (row.isOk() && batch.isOk()) {
            EXPECT_TRUE(row.value().sameRowMultiset(batch.value()));
        }
    }
}

TEST(BudgetTest, BatchRowBudgetMatchesOptimized)
{
    // chargeRows is per emitted row in both pipelines, so the row
    // budget trips identically — no batch-tail slack on this axis.
    for (uint64_t max_rows : {5ull, 29ull, 30ull}) {
        Database row_db = makeDb(StepBudget{0, max_rows, 0});
        Database batch_db = makeDb(StepBudget{0, max_rows, 0});
        fillTable(row_db, "t0", 30);
        fillTable(batch_db, "t0", 30);
        auto parsed = parseStatement("SELECT c0 FROM t0");
        ASSERT_TRUE(parsed.isOk());
        auto row =
            row_db.executeStmt(*parsed.value(), ExecMode::Optimized);
        auto batch =
            batch_db.executeStmt(*parsed.value(), ExecMode::Batch);
        EXPECT_EQ(row.isOk(), batch.isOk()) << "maxRows=" << max_rows;
        if (!row.isOk()) {
            EXPECT_EQ(row.status().code(),
                      ErrorCode::BudgetExhausted);
            EXPECT_EQ(batch.status().code(),
                      ErrorCode::BudgetExhausted);
        }
    }
}

TEST(BudgetTest, BatchStepChargesEqualOptimizedOnErrorFreeQueries)
{
    // Stronger than same-outcome: find the minimal step budget that
    // lets the statement through in each mode and demand they agree,
    // i.e. the kernels' charge total is *exactly* the row pipeline's.
    auto minimalBudget = [](ExecMode mode) -> uint64_t {
        auto parsed = parseStatement(
            "SELECT c0 * 2 FROM t0 WHERE c0 % 2 = 0 OR c0 > 20");
        EXPECT_TRUE(parsed.isOk());
        for (uint64_t steps = 1; steps < 4096; ++steps) {
            Database db = makeDb(StepBudget{steps, 0, 0});
            fillTable(db, "t0", 24);
            if (db.executeStmt(*parsed.value(), mode).isOk())
                return steps;
        }
        return 0;
    };
    uint64_t optimized_min = minimalBudget(ExecMode::Optimized);
    uint64_t batch_min = minimalBudget(ExecMode::Batch);
    ASSERT_GT(optimized_min, 0u);
    EXPECT_EQ(optimized_min, batch_min)
        << "batch kernels charge a different step total than the row "
           "evaluator on an error-free statement";
}

TEST(BudgetTest, ConnectionCountsBudgetFailuresAsResourceErrors)
{
    const DialectProfile *profile = findDialect("sqlite-like");
    ASSERT_NE(profile, nullptr);
    ConnectionOptions options;
    options.budget.maxSteps = 10;
    Connection connection(*profile, options);
    ASSERT_TRUE(
        connection.execute("CREATE TABLE t0 (c0 INT)").isOk());
    ASSERT_TRUE(connection
                    .execute("INSERT INTO t0 VALUES (1), (2), (3), "
                             "(4), (5), (6), (7), (8), (9), (10), "
                             "(11), (12)")
                    .isOk());
    auto result = connection.execute("SELECT * FROM t0");
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::BudgetExhausted);
    EXPECT_EQ(connection.resourceErrors(), 1u);
}

} // namespace
} // namespace sqlpp
