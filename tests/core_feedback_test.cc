/**
 * @file
 * Validity-feedback tests: the Beta-Binomial suppression rule, the
 * DDL repeated-failure rule, interval updates, and persistence.
 */
#include <gtest/gtest.h>

#include <filesystem>

#include "core/feedback.h"

namespace sqlpp {
namespace {

FeatureSet
only(FeatureId id)
{
    return FeatureSet{id};
}

TEST(FeedbackTest, UnknownFeatureIsAllowed)
{
    FeedbackTracker tracker;
    EXPECT_TRUE(tracker.shouldGenerate(0));
    EXPECT_TRUE(tracker.shouldGenerate(999));
}

TEST(FeedbackTest, PaperScenario400FailuresSuppresses)
{
    // Paper Section 4: y=0, N=400, p=0.01 -> Beta(1,401) puts >95% of
    // its mass below 0.01 -> unsupported.
    FeedbackConfig config;
    config.threshold = 0.01;
    config.updateInterval = 400;
    FeedbackTracker tracker(config);
    for (int i = 0; i < 400; ++i)
        tracker.record(only(7), /*success=*/false, /*is_query=*/true);
    EXPECT_FALSE(tracker.shouldGenerate(7));
    EXPECT_GT(tracker.massBelowThreshold(7), 0.95);
}

TEST(FeedbackTest, FewFailuresDoNotSuppress)
{
    FeedbackConfig config;
    config.updateInterval = 10;
    FeedbackTracker tracker(config);
    for (int i = 0; i < 10; ++i)
        tracker.record(only(3), false, true);
    // Beta(1, 11): CDF(0.01) ~= 0.105 << 0.95.
    EXPECT_TRUE(tracker.shouldGenerate(3));
}

TEST(FeedbackTest, MixedResultsKeepFeature)
{
    FeedbackConfig config;
    config.updateInterval = 100;
    FeedbackTracker tracker(config);
    for (int i = 0; i < 500; ++i)
        tracker.record(only(5), i % 3 == 0, true);
    EXPECT_TRUE(tracker.shouldGenerate(5));
    EXPECT_NEAR(tracker.estimatedProbability(5), 1.0 / 3.0, 0.05);
}

TEST(FeedbackTest, VerdictOnlyRefreshedAtInterval)
{
    FeedbackConfig config;
    config.updateInterval = 1000; // far away
    FeedbackTracker tracker(config);
    for (int i = 0; i < 500; ++i)
        tracker.record(only(2), false, true);
    // No interval boundary crossed: still allowed.
    EXPECT_TRUE(tracker.shouldGenerate(2));
    tracker.updateNow();
    EXPECT_FALSE(tracker.shouldGenerate(2));
}

TEST(FeedbackTest, DdlRepeatedFailureRule)
{
    FeedbackConfig config;
    config.ddlFailureLimit = 5;
    FeedbackTracker tracker(config);
    for (int i = 0; i < 4; ++i)
        tracker.record(only(9), false, /*is_query=*/false);
    EXPECT_TRUE(tracker.shouldGenerate(9));
    tracker.record(only(9), false, false);
    EXPECT_FALSE(tracker.shouldGenerate(9)); // 5th consecutive failure
}

TEST(FeedbackTest, DdlSuccessResetsSuppression)
{
    FeedbackConfig config;
    config.ddlFailureLimit = 3;
    FeedbackTracker tracker(config);
    for (int i = 0; i < 3; ++i)
        tracker.record(only(4), false, false);
    EXPECT_FALSE(tracker.shouldGenerate(4));
    tracker.record(only(4), true, false);
    EXPECT_TRUE(tracker.shouldGenerate(4));
}

TEST(FeedbackTest, DisabledFeedbackAllowsEverything)
{
    FeedbackConfig config;
    config.enabled = false;
    FeedbackTracker tracker(config);
    for (int i = 0; i < 1000; ++i)
        tracker.record(only(1), false, true);
    tracker.updateNow();
    EXPECT_TRUE(tracker.shouldGenerate(1));
}

TEST(FeedbackTest, WholeSetSharesTheOutcome)
{
    FeedbackConfig config;
    config.updateInterval = 400;
    FeedbackTracker tracker(config);
    FeatureSet set{11, 12, 13};
    // Beta(1, 401).cdf(0.01) ~= 0.982 >= 0.95 (200 would not suffice:
    // 1 - 0.99^201 ~= 0.87).
    for (int i = 0; i < 400; ++i)
        tracker.record(set, false, true);
    for (FeatureId id : set)
        EXPECT_FALSE(tracker.shouldGenerate(id)) << id;
}

TEST(FeedbackTest, SuppressedFeatureListing)
{
    FeedbackConfig config;
    config.updateInterval = 400;
    FeedbackTracker tracker(config);
    for (int i = 0; i < 400; ++i)
        tracker.record(only(6), false, true);
    auto suppressed = tracker.suppressedFeatures();
    ASSERT_EQ(suppressed.size(), 1u);
    EXPECT_EQ(suppressed[0], 6u);
}

TEST(FeedbackTest, DdlClassificationStaysSticky)
{
    // Regression: a feature first seen in setup DDL used to flip to
    // the query rule as soon as a query recorded it, un-suppressing a
    // standing DDL verdict because the young posterior was still
    // indecisive.
    FeedbackConfig config;
    config.ddlFailureLimit = 5;
    config.updateInterval = 1000;
    FeedbackTracker tracker(config);
    for (int i = 0; i < 5; ++i)
        tracker.record(only(17), false, /*is_query=*/false);
    ASSERT_FALSE(tracker.shouldGenerate(17));
    tracker.record(only(17), false, /*is_query=*/true);
    tracker.updateNow();
    EXPECT_FALSE(tracker.shouldGenerate(17));
    EXPECT_FALSE(tracker.classifiedAsQuery(17));
    EXPECT_TRUE(tracker.isClassified(17));
}

TEST(FeedbackTest, QueryClassificationImmuneToDdlRule)
{
    // Regression (the flip side): a query-classified feature that later
    // shows up in setup statements must keep its Bayesian verdict — a
    // handful of failures used to trip the DDL repeated-failure rule
    // once the last writer happened to be a setup statement.
    FeedbackConfig config;
    config.ddlFailureLimit = 3;
    config.updateInterval = 1000;
    FeedbackTracker tracker(config);
    for (int i = 0; i < 4; ++i)
        tracker.record(only(23), false, /*is_query=*/true);
    ASSERT_TRUE(tracker.shouldGenerate(23));
    for (int i = 0; i < 5; ++i)
        tracker.record(only(23), false, /*is_query=*/false);
    // 9 failures: far from a posterior verdict, and the DDL rule must
    // not apply to a query feature.
    EXPECT_TRUE(tracker.shouldGenerate(23));
    EXPECT_TRUE(tracker.classifiedAsQuery(23));
}

TEST(FeedbackTest, AbsorbMergesEvidenceAcrossTrackers)
{
    // Two shards each observe 200 failures — neither alone reaches the
    // credible-mass bar, the merged evidence does. Registries intern
    // the feature in different orders; absorb maps ids by name.
    FeedbackConfig config;
    config.threshold = 0.01;
    config.credibleMass = 0.90;
    config.updateInterval = 1000;

    FeatureRegistry registry_a;
    FeatureId id_a =
        registry_a.intern("FN_TESTONLY", FeatureKind::Function);
    FeedbackTracker shard_a(config);
    for (int i = 0; i < 200; ++i)
        shard_a.record(only(id_a), false, true);
    shard_a.updateNow();
    ASSERT_TRUE(shard_a.shouldGenerate(id_a)); // 200 is not enough

    FeatureRegistry registry_b;
    registry_b.intern("FN_PADDING", FeatureKind::Function);
    FeatureId id_b =
        registry_b.intern("FN_TESTONLY", FeatureKind::Function);
    ASSERT_NE(id_a, id_b); // interned in a different order
    FeedbackTracker shard_b(config);
    for (int i = 0; i < 200; ++i)
        shard_b.record(only(id_b), false, true);

    FeatureRegistry merged_registry;
    FeedbackTracker merged(config);
    merged.absorb(shard_a, registry_a, merged_registry);
    merged.absorb(shard_b, registry_b, merged_registry);

    FeatureId merged_id = merged_registry.find("FN_TESTONLY");
    ASSERT_NE(merged_id, static_cast<FeatureId>(-1));
    EXPECT_EQ(merged.stats(merged_id).executions, 400u);
    EXPECT_EQ(merged.recorded(), 400u);
    // Beta(1, 401) puts ~98% of its mass below 0.01: suppressed.
    EXPECT_FALSE(merged.shouldGenerate(merged_id));
}

TEST(FeedbackTest, AbsorbDdlSuccessLiftsSuppression)
{
    FeedbackConfig config;
    config.ddlFailureLimit = 10;
    FeatureRegistry registry;
    FeatureId id = registry.find("STMT_CREATE_INDEX");
    ASSERT_NE(id, static_cast<FeatureId>(-1));

    FeedbackTracker failing(config);
    for (int i = 0; i < 12; ++i)
        failing.record(only(id), false, false);
    ASSERT_FALSE(failing.shouldGenerate(id));

    FeedbackTracker succeeding(config);
    succeeding.record(only(id), true, false);

    FeatureRegistry merged_registry;
    FeedbackTracker merged(config);
    merged.absorb(failing, registry, merged_registry);
    merged.absorb(succeeding, registry, merged_registry);
    FeatureId merged_id = merged_registry.find("STMT_CREATE_INDEX");
    // The merged evidence has a success: the repeated-failure rule no
    // longer suppresses.
    EXPECT_TRUE(merged.shouldGenerate(merged_id));
    EXPECT_EQ(merged.stats(merged_id).executions, 13u);
    EXPECT_EQ(merged.stats(merged_id).successes, 1u);
}

TEST(FeedbackTest, PersistenceRoundTrip)
{
    FeatureRegistry registry;
    FeatureId sin = registry.find("FN_SIN");
    FeatureId index = registry.find("STMT_CREATE_INDEX");
    ASSERT_NE(sin, static_cast<FeatureId>(-1));

    FeedbackConfig config;
    config.updateInterval = 400;
    FeedbackTracker tracker(config);
    for (int i = 0; i < 400; ++i)
        tracker.record(only(sin), false, true);
    for (int i = 0; i < 12; ++i)
        tracker.record(only(index), false, false);
    ASSERT_FALSE(tracker.shouldGenerate(sin));
    ASSERT_FALSE(tracker.shouldGenerate(index));

    KvStore store;
    tracker.save(registry, store);

    FeedbackTracker restored(config);
    restored.load(registry, store);
    EXPECT_FALSE(restored.shouldGenerate(sin));
    EXPECT_FALSE(restored.shouldGenerate(index));
    EXPECT_EQ(restored.stats(sin).executions, 400u);
    EXPECT_EQ(restored.stats(sin).successes, 0u);
}

TEST(FeedbackTest, PersistenceSurvivesFile)
{
    FeatureRegistry registry;
    FeatureId glob = registry.find("OP_GLOB");
    ASSERT_NE(glob, static_cast<FeatureId>(-1));
    FeedbackConfig config;
    config.updateInterval = 500;
    FeedbackTracker tracker(config);
    for (int i = 0; i < 500; ++i)
        tracker.record(only(glob), false, true);

    std::string path =
        (std::filesystem::temp_directory_path() / "sqlpp_fb.kv")
            .string();
    KvStore store;
    tracker.save(registry, store);
    ASSERT_TRUE(store.save(path).isOk());

    KvStore loaded;
    ASSERT_TRUE(loaded.load(path).isOk());
    FeedbackTracker restored(config);
    restored.load(registry, loaded);
    EXPECT_FALSE(restored.shouldGenerate(glob));
    std::remove(path.c_str());
}

} // namespace
} // namespace sqlpp
