/**
 * @file
 * Validity-feedback tests: the Beta-Binomial suppression rule, the
 * DDL repeated-failure rule, interval updates, and persistence.
 */
#include <gtest/gtest.h>

#include <filesystem>

#include "core/feedback.h"

namespace sqlpp {
namespace {

FeatureSet
only(FeatureId id)
{
    return FeatureSet{id};
}

TEST(FeedbackTest, UnknownFeatureIsAllowed)
{
    FeedbackTracker tracker;
    EXPECT_TRUE(tracker.shouldGenerate(0));
    EXPECT_TRUE(tracker.shouldGenerate(999));
}

TEST(FeedbackTest, PaperScenario400FailuresSuppresses)
{
    // Paper Section 4: y=0, N=400, p=0.01 -> Beta(1,401) puts >95% of
    // its mass below 0.01 -> unsupported.
    FeedbackConfig config;
    config.threshold = 0.01;
    config.updateInterval = 400;
    FeedbackTracker tracker(config);
    for (int i = 0; i < 400; ++i)
        tracker.record(only(7), /*success=*/false, /*is_query=*/true);
    EXPECT_FALSE(tracker.shouldGenerate(7));
    EXPECT_GT(tracker.massBelowThreshold(7), 0.95);
}

TEST(FeedbackTest, FewFailuresDoNotSuppress)
{
    FeedbackConfig config;
    config.updateInterval = 10;
    FeedbackTracker tracker(config);
    for (int i = 0; i < 10; ++i)
        tracker.record(only(3), false, true);
    // Beta(1, 11): CDF(0.01) ~= 0.105 << 0.95.
    EXPECT_TRUE(tracker.shouldGenerate(3));
}

TEST(FeedbackTest, MixedResultsKeepFeature)
{
    FeedbackConfig config;
    config.updateInterval = 100;
    FeedbackTracker tracker(config);
    for (int i = 0; i < 500; ++i)
        tracker.record(only(5), i % 3 == 0, true);
    EXPECT_TRUE(tracker.shouldGenerate(5));
    EXPECT_NEAR(tracker.estimatedProbability(5), 1.0 / 3.0, 0.05);
}

TEST(FeedbackTest, VerdictOnlyRefreshedAtInterval)
{
    FeedbackConfig config;
    config.updateInterval = 1000; // far away
    FeedbackTracker tracker(config);
    for (int i = 0; i < 500; ++i)
        tracker.record(only(2), false, true);
    // No interval boundary crossed: still allowed.
    EXPECT_TRUE(tracker.shouldGenerate(2));
    tracker.updateNow();
    EXPECT_FALSE(tracker.shouldGenerate(2));
}

TEST(FeedbackTest, DdlRepeatedFailureRule)
{
    FeedbackConfig config;
    config.ddlFailureLimit = 5;
    FeedbackTracker tracker(config);
    for (int i = 0; i < 4; ++i)
        tracker.record(only(9), false, /*is_query=*/false);
    EXPECT_TRUE(tracker.shouldGenerate(9));
    tracker.record(only(9), false, false);
    EXPECT_FALSE(tracker.shouldGenerate(9)); // 5th consecutive failure
}

TEST(FeedbackTest, DdlSuccessResetsSuppression)
{
    FeedbackConfig config;
    config.ddlFailureLimit = 3;
    FeedbackTracker tracker(config);
    for (int i = 0; i < 3; ++i)
        tracker.record(only(4), false, false);
    EXPECT_FALSE(tracker.shouldGenerate(4));
    tracker.record(only(4), true, false);
    EXPECT_TRUE(tracker.shouldGenerate(4));
}

TEST(FeedbackTest, DisabledFeedbackAllowsEverything)
{
    FeedbackConfig config;
    config.enabled = false;
    FeedbackTracker tracker(config);
    for (int i = 0; i < 1000; ++i)
        tracker.record(only(1), false, true);
    tracker.updateNow();
    EXPECT_TRUE(tracker.shouldGenerate(1));
}

TEST(FeedbackTest, WholeSetSharesTheOutcome)
{
    FeedbackConfig config;
    config.updateInterval = 400;
    FeedbackTracker tracker(config);
    FeatureSet set{11, 12, 13};
    // Beta(1, 401).cdf(0.01) ~= 0.982 >= 0.95 (200 would not suffice:
    // 1 - 0.99^201 ~= 0.87).
    for (int i = 0; i < 400; ++i)
        tracker.record(set, false, true);
    for (FeatureId id : set)
        EXPECT_FALSE(tracker.shouldGenerate(id)) << id;
}

TEST(FeedbackTest, SuppressedFeatureListing)
{
    FeedbackConfig config;
    config.updateInterval = 400;
    FeedbackTracker tracker(config);
    for (int i = 0; i < 400; ++i)
        tracker.record(only(6), false, true);
    auto suppressed = tracker.suppressedFeatures();
    ASSERT_EQ(suppressed.size(), 1u);
    EXPECT_EQ(suppressed[0], 6u);
}

TEST(FeedbackTest, PersistenceRoundTrip)
{
    FeatureRegistry registry;
    FeatureId sin = registry.find("FN_SIN");
    FeatureId index = registry.find("STMT_CREATE_INDEX");
    ASSERT_NE(sin, static_cast<FeatureId>(-1));

    FeedbackConfig config;
    config.updateInterval = 400;
    FeedbackTracker tracker(config);
    for (int i = 0; i < 400; ++i)
        tracker.record(only(sin), false, true);
    for (int i = 0; i < 12; ++i)
        tracker.record(only(index), false, false);
    ASSERT_FALSE(tracker.shouldGenerate(sin));
    ASSERT_FALSE(tracker.shouldGenerate(index));

    KvStore store;
    tracker.save(registry, store);

    FeedbackTracker restored(config);
    restored.load(registry, store);
    EXPECT_FALSE(restored.shouldGenerate(sin));
    EXPECT_FALSE(restored.shouldGenerate(index));
    EXPECT_EQ(restored.stats(sin).executions, 400u);
    EXPECT_EQ(restored.stats(sin).successes, 0u);
}

TEST(FeedbackTest, PersistenceSurvivesFile)
{
    FeatureRegistry registry;
    FeatureId glob = registry.find("OP_GLOB");
    ASSERT_NE(glob, static_cast<FeatureId>(-1));
    FeedbackConfig config;
    config.updateInterval = 500;
    FeedbackTracker tracker(config);
    for (int i = 0; i < 500; ++i)
        tracker.record(only(glob), false, true);

    std::string path =
        (std::filesystem::temp_directory_path() / "sqlpp_fb.kv")
            .string();
    KvStore store;
    tracker.save(registry, store);
    ASSERT_TRUE(store.save(path).isOk());

    KvStore loaded;
    ASSERT_TRUE(loaded.load(path).isOk());
    FeedbackTracker restored(config);
    restored.load(registry, loaded);
    EXPECT_FALSE(restored.shouldGenerate(glob));
    std::remove(path.c_str());
}

} // namespace
} // namespace sqlpp
