/**
 * @file
 * EET oracle tests: rewrite enumeration under the 3VL soundness gates,
 * deterministic salt-driven choice, the 500-rewrite equivalence
 * property on a fault-free engine, corner pins for NULL-heavy columns
 * and INT64 boundary constants, detection of the faults every other
 * oracle is structurally blind to, Inapplicable semantics on
 * capability-poor dialects, and campaign silence on the fault-free
 * reference dialect.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "core/campaign.h"
#include "core/oracle.h"
#include "core/rewrite.h"
#include "parser/parser.h"
#include "sqlir/printer.h"
#include "util/rng.h"

namespace sqlpp {
namespace {

/** A one-off dialect with a custom fault set and full capabilities. */
DialectProfile
testProfile(std::initializer_list<FaultId> faults)
{
    DialectProfile profile = *findDialect("postgres-like");
    profile.name = "test";
    profile.behavior.staticTyping = false; // keep predicates flexible
    profile.binaryOps.insert(BinaryOp::NullSafeEq);
    for (FaultId id : faults)
        profile.faults.enable(id);
    return profile;
}

void
seed(Connection &conn)
{
    ASSERT_TRUE(conn.execute("CREATE TABLE t0 (c0 INT, c1 TEXT)").isOk());
    ASSERT_TRUE(conn.execute("INSERT INTO t0 VALUES (1, 'a'), (2, 'b'), "
                             "(3, 'c'), (NULL, 'd')")
                    .isOk());
}

OracleResult
runOracle(Oracle &oracle, Connection &conn, const std::string &base,
          const std::string &predicate)
{
    auto base_ast = parseStatement(base);
    auto pred_ast = parseExpression(predicate);
    EXPECT_TRUE(base_ast.isOk());
    EXPECT_TRUE(pred_ast.isOk());
    return oracle.check(
        conn, static_cast<const SelectStmt &>(*base_ast.value()),
        *pred_ast.value());
}

/** Stats for a parsed base over a live connection. */
EetTableStats
statsFor(Connection &conn, const std::string &base_text)
{
    auto base_ast = parseStatement(base_text);
    EXPECT_TRUE(base_ast.isOk());
    const auto &base =
        static_cast<const SelectStmt &>(*base_ast.value());
    auto scan = conn.execute(eetStatsScanText(base));
    EXPECT_TRUE(scan.isOk());
    return computeTableStats(base, scan.value());
}

std::set<std::string>
kindsOf(const std::vector<RewriteCandidate> &candidates)
{
    std::set<std::string> kinds;
    for (const RewriteCandidate &candidate : candidates)
        kinds.insert(candidate.kind);
    return kinds;
}

TEST(EetRewriteTest, EnumerationCoversWrapperKinds)
{
    DialectProfile profile = testProfile({});
    Connection conn(profile);
    seed(conn);
    EetTableStats stats = statsFor(conn, "SELECT * FROM t0");

    // c1 has no NULLs in the seed data, so `c1 = 'a'` is provably
    // null-free and boolean-rooted: every wrapper kind applies.
    auto pred = parseExpression("t0.c1 = 'a'");
    ASSERT_TRUE(pred.isOk());
    auto candidates =
        enumerateRewrites(*pred.value(), profile, &stats);
    std::set<std::string> kinds = kindsOf(candidates);
    EXPECT_TRUE(kinds.count("and_true"));
    EXPECT_TRUE(kinds.count("or_false"));
    EXPECT_TRUE(kinds.count("not_not"));
    EXPECT_TRUE(kinds.count("is_true"));
    EXPECT_TRUE(kinds.count("is_not_false"));
    // c0 is the only integer column, so exactly one tautology lane.
    EXPECT_TRUE(kinds.count("taut_range"));
}

TEST(EetRewriteTest, NullCollapsingWrappersRequireProof)
{
    DialectProfile profile = testProfile({});
    Connection conn(profile);
    seed(conn);
    EetTableStats stats = statsFor(conn, "SELECT * FROM t0");

    // c0 holds a NULL: `(c0 = 1) IS TRUE` would turn a NULL row's
    // predicate into FALSE, which WHERE cannot distinguish — but the
    // projection lane could, so the wrapper must not be offered.
    auto nullable = parseExpression("t0.c0 = 1");
    ASSERT_TRUE(nullable.isOk());
    std::set<std::string> kinds =
        kindsOf(enumerateRewrites(*nullable.value(), profile, &stats));
    EXPECT_FALSE(kinds.count("is_true"));
    EXPECT_FALSE(kinds.count("is_not_false"));
    EXPECT_TRUE(kinds.count("and_true"));

    // A non-boolean root (bare column) fails the other gate even when
    // null-free: `c1 IS TRUE` is not value-equivalent to `c1`.
    auto bare = parseExpression("t0.c1");
    ASSERT_TRUE(bare.isOk());
    std::set<std::string> bare_kinds =
        kindsOf(enumerateRewrites(*bare.value(), profile, &stats));
    EXPECT_FALSE(bare_kinds.count("is_true"));
    EXPECT_FALSE(bare_kinds.count("is_not_false"));

    // Without stats nothing about columns is provable.
    std::set<std::string> blind_kinds = kindsOf(
        enumerateRewrites(*parseExpression("t0.c1 = 'a'").value(),
                          profile, nullptr));
    EXPECT_FALSE(blind_kinds.count("is_true"));
    EXPECT_FALSE(blind_kinds.count("taut_range"));
}

TEST(EetRewriteTest, ChoiceIsDeterministicInSalt)
{
    DialectProfile profile = testProfile({});
    auto pred = parseExpression("t0.c0 > 1");
    ASSERT_TRUE(pred.isOk());
    for (uint64_t salt : {0u, 1u, 7u, 99173u}) {
        auto first =
            chooseRewrite(*pred.value(), salt, profile, nullptr);
        auto second =
            chooseRewrite(*pred.value(), salt, profile, nullptr);
        ASSERT_TRUE(first.has_value());
        ASSERT_TRUE(second.has_value());
        EXPECT_STREQ(first->kind, second->kind);
        EXPECT_EQ(printExpr(*first->expr), printExpr(*second->expr));
    }
}

/** Random predicate generator for the equivalence property test. */
ExprPtr
randomPredicate(Rng &rng, int depth)
{
    auto column = [&rng]() -> ExprPtr {
        return std::make_unique<ColumnRefExpr>(
            "t0", rng.coin() ? "c0" : "c1");
    };
    auto literal = [&rng]() -> ExprPtr {
        switch (rng.below(4)) {
          case 0:
            return std::make_unique<LiteralExpr>(Value::null());
          case 1:
            return std::make_unique<LiteralExpr>(
                Value::text(rng.coin() ? "ab" : "_b%"));
          case 2:
            return std::make_unique<LiteralExpr>(
                Value::boolean(rng.coin()));
          default:
            return std::make_unique<LiteralExpr>(Value::integer(
                static_cast<int64_t>(rng.range(0, 5)) - 2));
        }
    };
    auto leaf = [&]() -> ExprPtr {
        return rng.coin() ? column() : literal();
    };
    if (depth <= 0)
        return leaf();

    switch (rng.below(6)) {
      case 0: {
        static const BinaryOp comparisons[] = {
            BinaryOp::Eq,        BinaryOp::NotEq,   BinaryOp::Less,
            BinaryOp::LessEq,    BinaryOp::Greater, BinaryOp::GreaterEq,
            BinaryOp::NullSafeEq};
        return std::make_unique<BinaryExpr>(
            comparisons[rng.below(7)], randomPredicate(rng, depth - 1),
            randomPredicate(rng, depth - 1));
      }
      case 1: {
        static const BinaryOp logic[] = {BinaryOp::And, BinaryOp::Or};
        return std::make_unique<BinaryExpr>(
            logic[rng.below(2)], randomPredicate(rng, depth - 1),
            randomPredicate(rng, depth - 1));
      }
      case 2: {
        static const BinaryOp arith[] = {BinaryOp::Add, BinaryOp::Sub,
                                         BinaryOp::Mul, BinaryOp::Div};
        return std::make_unique<BinaryExpr>(
            arith[rng.below(4)], leaf(), leaf());
      }
      case 3: {
        static const UnaryOp unaries[] = {
            UnaryOp::Not, UnaryOp::IsNull, UnaryOp::IsNotNull,
            UnaryOp::IsTrue, UnaryOp::IsFalse};
        return std::make_unique<UnaryExpr>(
            unaries[rng.below(5)], randomPredicate(rng, depth - 1));
      }
      case 4:
        return std::make_unique<BinaryExpr>(
            rng.coin() ? BinaryOp::Like : BinaryOp::NotLike, column(),
            std::make_unique<LiteralExpr>(
                Value::text(rng.coin() ? "_b" : "%a%")));
      default:
        return leaf();
    }
}

/**
 * The core EET soundness property: on a fault-free engine, *every*
 * enumerated rewrite of *every* predicate returns the same WHERE-lane
 * multiset as the original — and the same projection-lane multiset
 * when the predicate is boolean-rooted. 200 seeds, at least 500
 * individual rewrites exercised.
 */
TEST(EetPropertyTest, FiveHundredRewritesPreserveResults)
{
    DialectProfile profile = testProfile({});
    Connection conn(profile);
    seed(conn);

    auto base_ast = parseStatement("SELECT * FROM t0");
    ASSERT_TRUE(base_ast.isOk());
    const auto &base =
        static_cast<const SelectStmt &>(*base_ast.value());
    auto scan = conn.execute(eetStatsScanText(base));
    ASSERT_TRUE(scan.isOk());
    EetTableStats stats = computeTableStats(base, scan.value());

    auto with_where = [&base](const Expr &predicate) {
        SelectPtr query = base.cloneSelect();
        query->where = predicate.clone();
        return printSelect(*query);
    };
    auto projected = [&base](const Expr &flag) {
        SelectPtr query = base.cloneSelect();
        query->items.clear();
        SelectItem item;
        item.expr = flag.clone();
        item.alias = "eet";
        query->items.push_back(std::move(item));
        return printSelect(*query);
    };

    size_t where_checked = 0, projection_checked = 0, skipped = 0;
    for (uint64_t seed_value = 0; seed_value < 200; ++seed_value) {
        Rng rng(seed_value);
        ExprPtr predicate = randomPredicate(rng, 3);
        auto original = conn.execute(with_where(*predicate));
        if (!original.isOk()) {
            ++skipped; // runtime error (overflow, ...) — not EET's bug
            continue;
        }
        bool projectable = exprBooleanRooted(*predicate);
        StatusOr<ResultSet> original_projected =
            projectable
                ? conn.execute(projected(*predicate))
                : StatusOr<ResultSet>(
                      Status::runtimeError("projection lane unused"));

        for (const RewriteCandidate &candidate :
             enumerateRewrites(*predicate, profile, &stats)) {
            auto rewritten = conn.execute(with_where(*candidate.expr));
            if (!rewritten.isOk()) {
                ++skipped;
                continue;
            }
            EXPECT_TRUE(original.value().sameRowMultiset(
                rewritten.value()))
                << candidate.kind << " changed WHERE results for "
                << printExpr(*predicate);
            ++where_checked;

            if (!projectable || !original_projected.isOk())
                continue;
            auto rewritten_projected =
                conn.execute(projected(*candidate.expr));
            if (!rewritten_projected.isOk()) {
                ++skipped;
                continue;
            }
            EXPECT_TRUE(original_projected.value().sameRowMultiset(
                rewritten_projected.value()))
                << candidate.kind
                << " changed projected values for "
                << printExpr(*predicate);
            ++projection_checked;
        }
    }
    // The property must be exercised on a real sample, not vacuously.
    EXPECT_GE(where_checked, 500u);
    EXPECT_GE(projection_checked, 100u);
    EXPECT_LE(skipped, where_checked / 2);
}

TEST(EetCornerTest, AllNullColumnGetsNoTautologyOrProof)
{
    DialectProfile profile = testProfile({});
    Connection conn(profile);
    ASSERT_TRUE(
        conn.execute("CREATE TABLE nulls0 (c0 INT, c1 INT)").isOk());
    ASSERT_TRUE(conn.execute("INSERT INTO nulls0 VALUES (NULL, NULL), "
                             "(NULL, NULL), (NULL, 1)")
                    .isOk());
    EetTableStats stats = statsFor(conn, "SELECT * FROM nulls0");

    // c0 is all-NULL: nonNullCount == 0 disqualifies the tautology
    // lane (its BETWEEN bounds would be meaningless), and hasNull
    // blocks the null-free proof for both columns.
    const EetColumnStats *c0 = stats.find("c0");
    ASSERT_NE(c0, nullptr);
    EXPECT_TRUE(c0->hasNull);
    EXPECT_EQ(c0->nonNullCount, 0u);
    auto pred = parseExpression("nulls0.c0 = 1");
    ASSERT_TRUE(pred.isOk());
    std::set<std::string> kinds;
    for (const RewriteCandidate &candidate :
         enumerateRewrites(*pred.value(), profile, &stats)) {
        kinds.insert(candidate.kind);
        // The only tautology column may be c1 (one non-NULL value).
        if (std::strcmp(candidate.kind, "taut_range") == 0) {
            EXPECT_NE(printExpr(*candidate.expr).find("c1"),
                      std::string::npos);
        }
    }
    EXPECT_FALSE(kinds.count("is_true"));

    // End to end, the NULL-heavy table must still check clean.
    EetOracle eet;
    OracleResult result = runOracle(
        eet, conn, "SELECT * FROM nulls0", "nulls0.c0 = nulls0.c1");
    EXPECT_EQ(result.outcome, OracleOutcome::Passed) << result.details;
}

TEST(EetCornerTest, Int64BoundaryConstantsSurviveTheRewriteCycle)
{
    DialectProfile profile = testProfile({});
    Connection conn(profile);
    ASSERT_TRUE(conn.execute("CREATE TABLE edge0 (c0 INT)").isOk());
    ASSERT_TRUE(
        conn.execute("INSERT INTO edge0 VALUES "
                     "(-9223372036854775808), (9223372036854775807), "
                     "(0), (NULL)")
            .isOk());
    EetTableStats stats = statsFor(conn, "SELECT * FROM edge0");
    const EetColumnStats *c0 = stats.find("c0");
    ASSERT_NE(c0, nullptr);
    EXPECT_EQ(c0->minInt, INT64_MIN);
    EXPECT_EQ(c0->maxInt, INT64_MAX);

    // The tautology conjunct prints `BETWEEN -9223372036854775808 AND
    // 9223372036854775807` — INT64_MIN's printed form must survive the
    // print -> SQL text -> parse cycle the oracle's queries take.
    auto pred = parseExpression("edge0.c0 >= 0");
    ASSERT_TRUE(pred.isOk());
    bool saw_taut = false;
    for (const RewriteCandidate &candidate :
         enumerateRewrites(*pred.value(), profile, &stats)) {
        if (std::strcmp(candidate.kind, "taut_range") != 0)
            continue;
        saw_taut = true;
        std::string text = printExpr(*candidate.expr);
        auto reparsed = parseExpression(text);
        ASSERT_TRUE(reparsed.isOk()) << text;
        EXPECT_EQ(printExpr(*reparsed.value()), text);
    }
    EXPECT_TRUE(saw_taut);

    EetOracle eet;
    OracleResult result =
        runOracle(eet, conn, "SELECT * FROM edge0", "edge0.c0 >= 0");
    EXPECT_EQ(result.outcome, OracleOutcome::Passed) << result.details;
}

TEST(EetOracleTest, PassesOnCleanEngine)
{
    DialectProfile profile = testProfile({});
    Connection conn(profile);
    seed(conn);
    EetOracle eet;
    const char *predicates[] = {
        "t0.c0 > 1",        "t0.c0 IS NULL",  "NOT (t0.c0 = 2)",
        "t0.c1 LIKE '%a%'", "t0.c0 BETWEEN 1 AND 2",
        "t0.c0 IN (1, NULL)", "t0.c0 + 1 = 3",
    };
    for (const char *p : predicates) {
        OracleResult result =
            runOracle(eet, conn, "SELECT * FROM t0", p);
        EXPECT_EQ(result.outcome, OracleOutcome::Passed)
            << p << ": " << result.details;
        // Stats scan + two WHERE-lane queries, plus two projection-lane
        // queries when the predicate is boolean-rooted.
        EXPECT_GE(result.queries.size(), 3u) << p;
    }
}

TEST(EetOracleTest, DeterministicAcrossRepeatedChecks)
{
    DialectProfile profile = testProfile({});
    Connection conn(profile);
    seed(conn);
    EetOracle eet;
    OracleResult first =
        runOracle(eet, conn, "SELECT * FROM t0", "t0.c0 > 1");
    OracleResult second =
        runOracle(eet, conn, "SELECT * FROM t0", "t0.c0 > 1");
    EXPECT_EQ(first.outcome, second.outcome);
    EXPECT_EQ(first.queries, second.queries);
}

TEST(EetOracleTest, SkipsWhenScanFails)
{
    DialectProfile profile = testProfile({});
    Connection conn(profile);
    EetOracle eet;
    OracleResult result =
        runOracle(eet, conn, "SELECT * FROM missing", "1 = 1");
    EXPECT_EQ(result.outcome, OracleOutcome::Skipped);
    EXPECT_NE(result.details.find("stats scan failed"),
              std::string::npos);
}

TEST(EetOracleTest, InapplicableWhenDialectLacksWrapperOperators)
{
    // Strip every operator the rewriter can build wrappers from; the
    // oracle must report Inapplicable (says nothing about the dialect),
    // not Skipped and never a false Bug.
    DialectProfile profile = testProfile({});
    profile.binaryOps.erase(BinaryOp::And);
    profile.binaryOps.erase(BinaryOp::Or);
    profile.unaryOps.erase(UnaryOp::Not);
    profile.unaryOps.erase(UnaryOp::IsTrue);
    profile.unaryOps.erase(UnaryOp::IsNotFalse);
    profile.unaryOps.erase(UnaryOp::IsNull);
    Connection conn(profile);
    seed(conn);
    EetOracle eet;
    OracleResult result =
        runOracle(eet, conn, "SELECT * FROM t0", "t0.c0 > 1");
    EXPECT_EQ(result.outcome, OracleOutcome::Inapplicable)
        << result.details;
}

TEST(EetOracleTest, CatchesDoubleNegNullFalseAloneAmongOracles)
{
    // The root-keyed double-negation fault: NOT (NOT p) at an
    // evaluation root collapses NULL to FALSE. WHERE roots exclude the
    // row either way and rectified/partition wrappers never place the
    // double NOT at a root, so TLP, NoREC and PQS all pass; EET's
    // projection lane evaluates the doubly-negated predicate as a
    // value and sees FALSE where the original projects NULL.
    DialectProfile profile = testProfile({FaultId::DoubleNegNullFalse});
    // Funnel the salt-driven choice to not_not: no BOOL literals (kills
    // and_true/or_false), a join base (no stats, kills taut_range), and
    // a NULL-capable predicate (kills the IS-family wrappers).
    profile.dataTypes.erase(DataType::Bool);
    Connection conn(profile);
    seed(conn);
    ASSERT_TRUE(conn.execute("CREATE TABLE t1 (c0 INT)").isOk());
    ASSERT_TRUE(
        conn.execute("INSERT INTO t1 VALUES (1), (NULL)").isOk());

    const char *base =
        "SELECT * FROM t0 INNER JOIN t1 ON (1 = 1)";
    const char *predicate = "t0.c0 = t1.c0";

    EetOracle eet;
    OracleResult bug = runOracle(eet, conn, base, predicate);
    EXPECT_EQ(bug.outcome, OracleOutcome::Bug) << bug.details;
    EXPECT_NE(bug.details.find("not_not"), std::string::npos)
        << bug.details;

    TlpOracle tlp;
    EXPECT_NE(runOracle(tlp, conn, base, predicate).outcome,
              OracleOutcome::Bug);
    NorecOracle norec;
    EXPECT_NE(runOracle(norec, conn, base, predicate).outcome,
              OracleOutcome::Bug);
    PqsOracle pqs; // joins are outside PQS's domain
    EXPECT_EQ(runOracle(pqs, conn, base, predicate).outcome,
              OracleOutcome::Inapplicable);
}

TEST(EetOracleTest, CatchesConstFoldTrueAbsorbsAnd)
{
    // The absorbing-element folding bug only fires on the exact tree
    // EET's and_true wrapper emits: WHERE <x> AND TRUE -> TRUE.
    DialectProfile profile =
        testProfile({FaultId::ConstFoldTrueAbsorbsAnd});
    // Funnel the choice to and_true.
    profile.binaryOps.erase(BinaryOp::Or);
    profile.unaryOps.erase(UnaryOp::Not);
    profile.unaryOps.erase(UnaryOp::IsTrue);
    profile.unaryOps.erase(UnaryOp::IsNotFalse);
    Connection conn(profile);
    seed(conn);
    ASSERT_TRUE(conn.execute("CREATE TABLE t1 (c0 INT)").isOk());
    ASSERT_TRUE(conn.execute("INSERT INTO t1 VALUES (1), (2)").isOk());

    const char *base =
        "SELECT * FROM t0 INNER JOIN t1 ON (1 = 1)";
    EetOracle eet;
    OracleResult bug = runOracle(eet, conn, base, "t0.c0 = 1");
    EXPECT_EQ(bug.outcome, OracleOutcome::Bug) << bug.details;
    EXPECT_NE(bug.details.find("and_true"), std::string::npos)
        << bug.details;
}

TEST(EetCampaignTest, InapplicableExcludedFromValidityFeedback)
{
    // A dialect with none of the wrapper operators makes every EET
    // check Inapplicable. Inapplicable says nothing about the dialect:
    // it must be tallied separately and never against the validity
    // rate the generator steers by, and it must never masquerade as a
    // bug.
    DialectProfile profile = testProfile({});
    profile.name = "eet-inapplicable";
    profile.binaryOps.erase(BinaryOp::And);
    profile.binaryOps.erase(BinaryOp::Or);
    profile.unaryOps.erase(UnaryOp::Not);
    profile.unaryOps.erase(UnaryOp::IsTrue);
    profile.unaryOps.erase(UnaryOp::IsNotFalse);
    profile.unaryOps.erase(UnaryOp::IsNull);

    CampaignConfig config;
    config.seed = 20260808;
    config.checks = 200;
    config.oracles = {"EET"};
    config.mode = GeneratorMode::Baseline;
    CampaignRunner runner(config, profile);
    CampaignStats stats = runner.run();
    EXPECT_GT(stats.checksAttempted, 0u);
    EXPECT_GT(stats.checksInapplicable, 0u);
    EXPECT_EQ(stats.bugsDetected, 0u);
    EXPECT_TRUE(stats.bugsByOracle.empty());
    // Checks where the only outcome was Inapplicable still count as
    // valid (every issued query executed) — the tally is orthogonal.
    EXPECT_GT(stats.checksValid, 0u);
}

TEST(EetCampaignTest, PrioritizerAttributesEetBugs)
{
    // Same fixture as the fault-matrix grid row that is EET-only: the
    // root-keyed double-negation fault. The campaign must attribute
    // every detection to EET — per-oracle tallies, BugCase::oracle and
    // the ORACLE_EET feature the prioritizer dedups by.
    DialectProfile profile = *findDialect("postgres-like");
    profile.name = "eet-attribution";
    profile.behavior.staticTyping = false;
    profile.binaryOps.insert(BinaryOp::NullSafeEq);
    profile.faults = FaultSet();
    profile.faults.enable(FaultId::DoubleNegNullFalse);

    CampaignConfig config;
    config.seed = 99173;
    config.checks = 2000;
    config.oracles = {"TLP", "NOREC", "PQS", "EET"};
    config.mode = GeneratorMode::Baseline;
    CampaignRunner runner(config, profile);
    CampaignStats stats = runner.run();

    ASSERT_GT(stats.bugsDetected, 0u);
    EXPECT_GT(stats.bugsByOracle["EET"], 0u);
    EXPECT_EQ(stats.bugsByOracle.count("TLP"), 0u);
    EXPECT_EQ(stats.bugsByOracle.count("NOREC"), 0u);
    EXPECT_EQ(stats.bugsByOracle.count("PQS"), 0u);
    ASSERT_GT(stats.prioritizedBugs.size(), 0u);
    for (const BugCase &bug : stats.prioritizedBugs) {
        EXPECT_EQ(bug.oracle, "EET");
        bool attributed = false;
        for (const std::string &name : bug.featureNames)
            attributed = attributed || name == "ORACLE_EET";
        EXPECT_TRUE(attributed)
            << "prioritized bug lacks the ORACLE_EET feature";
    }
}

TEST(EetCampaignTest, SilentOnFaultFreeReferenceDialect)
{
    CampaignConfig config;
    config.dialect = "postgres-like";
    config.seed = 20260808;
    config.checks = 300;
    config.oracles = {"EET"};
    CampaignRunner runner(config);
    CampaignStats stats = runner.run();
    EXPECT_EQ(stats.bugsDetected, 0u)
        << "EET false positive on the fault-free reference dialect";
    EXPECT_TRUE(stats.bugsByOracle.empty());
    EXPECT_GT(stats.checksAttempted, 0u);
}

} // namespace
} // namespace sqlpp
