/**
 * @file
 * Campaign-level metrics determinism: the acceptance contract of the
 * observability subsystem.
 *
 *  1. The default JSON export is byte-identical across repeated runs
 *     of the same campaign (fixed seed, one worker).
 *  2. Metric totals — and the merged CampaignStats — are identical
 *     across worker counts: instrumentation must not perturb the
 *     scheduler's deterministic merge, and lanes are keyed by shard,
 *     never by worker.
 */
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "util/metrics.h"

namespace sqlpp {
namespace {

SchedulerConfig
smallCampaign(size_t workers)
{
    SchedulerConfig config;
    config.mode = ScheduleMode::SliceChecks;
    config.workers = workers;
    config.slices = 4; // fixed layout regardless of workers
    config.campaign.dialect = "sqlite-like";
    config.campaign.seed = 97;
    config.campaign.checks = 80;
    config.campaign.setupStatements = 20;
    config.campaign.oracles = {"TLP", "NOREC"};
    config.campaign.feedback.updateInterval = 50;
    return config;
}

TEST(CoreMetricsTest, DefaultJsonIsByteIdenticalAcrossRuns)
{
    declarePlatformMetrics();

    MetricsRegistry::instance().reset();
    ScheduleReport first_report = CampaignScheduler(smallCampaign(1)).run();
    std::string first = exportMetricsJson();

    MetricsRegistry::instance().reset();
    ScheduleReport second_report =
        CampaignScheduler(smallCampaign(1)).run();
    std::string second = exportMetricsJson();

    EXPECT_EQ(first, second);
    EXPECT_TRUE(first_report.merged == second_report.merged);
}

TEST(CoreMetricsTest, TotalsAreWorkerCountIndependent)
{
    declarePlatformMetrics();

    MetricsRegistry::instance().reset();
    ScheduleReport serial = CampaignScheduler(smallCampaign(1)).run();
    std::string serial_json = exportMetricsJson();

    MetricsRegistry::instance().reset();
    ScheduleReport parallel = CampaignScheduler(smallCampaign(4)).run();
    std::string parallel_json = exportMetricsJson();

    // The scheduler's core contract survives instrumentation.
    EXPECT_TRUE(serial.merged == parallel.merged);

#ifndef SQLPP_NO_METRICS
    // Every campaign-logic total is a function of seed + shard layout
    // alone. (Only the scheduler.workers gauge may differ.)
    for (const char *name : {
             "campaign.checks",
             "campaign.bugs.detected",
             "campaign.bugs.prioritized",
             "connection.statements",
             "connection.execute.ok",
             "connection.error.syntax",
             "connection.error.semantic",
             "connection.error.runtime",
             "oracle.tlp.pass",
             "oracle.tlp.bug",
             "oracle.norec.pass",
             "oracle.norec.bug",
             "generator.select",
             "scheduler.shards.run",
         }) {
        // Totals were consumed from two separate runs via the JSON
        // strings; recompute from the documents to compare.
        auto total = [&](const std::string &json) {
            std::string needle =
                "\"name\": \"" + std::string(name) + "\"";
            size_t at = json.find(needle);
            EXPECT_NE(at, std::string::npos) << name;
            size_t total_at = json.find("\"total\": ", at);
            EXPECT_NE(total_at, std::string::npos) << name;
            return json.substr(total_at,
                               json.find_first_of(",}", total_at) -
                                   total_at);
        };
        EXPECT_EQ(total(serial_json), total(parallel_json)) << name;
    }

    // The work happened and was recorded: a campaign of 80 checks
    // executes at least that many statements.
    EXPECT_GE(
        MetricsRegistry::instance().counterTotal("connection.statements"),
        80u);
#endif
}

TEST(CoreMetricsTest, ShardLanesCarryDialectLabels)
{
    declarePlatformMetrics();
    MetricsRegistry::instance().reset();

    SchedulerConfig config;
    config.mode = ScheduleMode::ShardDialects;
    config.workers = 2;
    config.dialects = {"sqlite-like", "duckdb-like"};
    config.campaign.seed = 11;
    config.campaign.checks = 20;
    config.campaign.setupStatements = 10;
    (void)CampaignScheduler(config).run();

    std::string json = exportMetricsJson();
#ifndef SQLPP_NO_METRICS
    EXPECT_NE(json.find("\"shard\": \"sqlite-like\""),
              std::string::npos);
    EXPECT_NE(json.find("\"shard\": \"duckdb-like\""),
              std::string::npos);
#endif
}

} // namespace
} // namespace sqlpp
