/**
 * @file
 * Ground-truth fault × oracle detection matrix.
 *
 * The fault-injection substrate exists so oracle sensitivity can be
 * *measured*: for every injected fault we run a fixed-seed mini
 * campaign on a dialect carrying exactly that one fault, once per
 * oracle (TLP, NoREC, PQS, EET, ISO), and record detected/undetected.
 * The full 26-fault × 5-oracle grid is pinned by a checked-in golden
 * file (tests/golden/fault_matrix.txt) — any oracle or engine change
 * that shifts detection capability must regenerate it deliberately
 * with SQLPP_UPDATE_GOLDEN=1.
 *
 * Several properties are asserted independently of the golden text:
 *  - the fault-free control profile produces zero bugs for all oracles
 *    (no false positives),
 *  - PQS detects at least one fault that neither TLP nor NoREC detects
 *    (the containment oracle widens the detectable-bug classes),
 *  - EET detects at least one fault no other oracle detects (rewrite
 *    wrappers reach planner/evaluator paths WHERE-based checks never
 *    steer onto), and
 *  - the isolation faults split cleanly: every one is detected by ISO
 *    and by no single-session oracle (they are single-session no-ops),
 *    while ISO stays silent on every single-session fault (the
 *    interleaving generator's restricted vocabulary never reaches
 *    their trigger conditions).
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "core/campaign.h"
#include "engine/faults.h"
#include "util/strutil.h"

namespace sqlpp {
namespace {

const char *const kOracles[] = {"TLP", "NOREC", "PQS", "EET", "ISO"};

/**
 * The capability-maximal base the single-fault dialects derive from:
 * the fault-free reference profile with dynamic typing (so mixed-type
 * faults can manifest) and null-safe equality restored (postgres-like
 * drops <=>, which FaultId::NullSafeEqBothNullFalse needs).
 */
DialectProfile
matrixBaseProfile()
{
    DialectProfile profile = *findDialect("postgres-like");
    profile.name = "fault-matrix";
    profile.behavior.staticTyping = false;
    profile.binaryOps.insert(BinaryOp::NullSafeEq);
    profile.faults = FaultSet();
    return profile;
}

/** One fixed-seed mini campaign; true when the oracle flagged a bug. */
bool
detects(const DialectProfile &profile, const std::string &oracle,
        ExecMode exec_mode = ExecMode::Optimized)
{
    CampaignConfig config;
    config.seed = 99173;
    // ISO runs four full interleaving schedules (plus their serial
    // witnesses) per check; the guaranteed fault windows in every
    // schedule make detection deterministic, so far fewer checks give
    // the same verdict at a fraction of the wall clock.
    config.checks = oracle == std::string("ISO") ? 300 : 2000;
    config.oracles = {oracle};
    // The omniscient baseline generator exercises the profile's full
    // capability matrix from the first check — the matrix measures
    // oracle sensitivity, not feedback learning speed.
    config.mode = GeneratorMode::Baseline;
    config.execMode = exec_mode;
    CampaignRunner runner(config, profile);
    return runner.run().bugsDetected > 0;
}

std::string
renderMatrix(
    const std::map<std::string, std::map<std::string, bool>> &rows,
    const std::vector<std::string> &order)
{
    std::ostringstream out;
    out << "# fault x oracle detection matrix (1 = detected)\n"
        << "# regenerate with SQLPP_UPDATE_GOLDEN=1\n"
        << format("%-34s %4s %6s %4s %4s %4s\n", "fault", "TLP",
                  "NOREC", "PQS", "EET", "ISO");
    for (const std::string &fault : order) {
        const auto &cells = rows.at(fault);
        out << format("%-34s %4d %6d %4d %4d %4d\n", fault.c_str(),
                      cells.at("TLP") ? 1 : 0,
                      cells.at("NOREC") ? 1 : 0,
                      cells.at("PQS") ? 1 : 0,
                      cells.at("EET") ? 1 : 0,
                      cells.at("ISO") ? 1 : 0);
    }
    return out.str();
}

/** Run the full 26-fault × 5-oracle grid under one execution mode. */
std::string
renderMatrixForMode(ExecMode exec_mode)
{
    std::map<std::string, std::map<std::string, bool>> rows;
    std::vector<std::string> order;
    for (FaultId fault : allFaultIds()) {
        DialectProfile profile = matrixBaseProfile();
        profile.faults.enable(fault);
        order.push_back(faultName(fault));
        for (const char *oracle : kOracles)
            rows[faultName(fault)][oracle] =
                detects(profile, oracle, exec_mode);
    }
    DialectProfile clean = matrixBaseProfile();
    order.push_back("FAULT_FREE");
    for (const char *oracle : kOracles)
        rows["FAULT_FREE"][oracle] = detects(clean, oracle, exec_mode);
    return renderMatrix(rows, order);
}

TEST(OracleFaultMatrixTest, MatchesGroundTruthGolden)
{
    std::map<std::string, std::map<std::string, bool>> rows;
    std::vector<std::string> order;

    for (FaultId fault : allFaultIds()) {
        DialectProfile profile = matrixBaseProfile();
        profile.faults.enable(fault);
        order.push_back(faultName(fault));
        for (const char *oracle : kOracles)
            rows[faultName(fault)][oracle] = detects(profile, oracle);
    }

    // Fault-free control: all five oracles must stay silent.
    DialectProfile clean = matrixBaseProfile();
    order.push_back("FAULT_FREE");
    for (const char *oracle : kOracles) {
        bool detected = detects(clean, oracle);
        rows["FAULT_FREE"][oracle] = detected;
        EXPECT_FALSE(detected)
            << oracle << " reported a bug on the fault-free profile";
    }

    // The containment oracle must widen the detectable classes: at
    // least one fault only PQS sees.
    size_t pqs_only = 0;
    for (FaultId fault : allFaultIds()) {
        const auto &cells = rows.at(faultName(fault));
        if (cells.at("PQS") && !cells.at("TLP") && !cells.at("NOREC"))
            ++pqs_only;
    }
    EXPECT_GE(pqs_only, 1u)
        << "PQS detected no fault beyond TLP/NoREC reach";

    // The rewrite oracle must widen them again: at least one fault
    // (the root-keyed double-negation collapse by construction) that
    // only EET sees.
    size_t eet_only = 0;
    for (FaultId fault : allFaultIds()) {
        const auto &cells = rows.at(faultName(fault));
        if (cells.at("EET") && !cells.at("TLP") &&
            !cells.at("NOREC") && !cells.at("PQS"))
            ++eet_only;
    }
    EXPECT_GE(eet_only, 1u)
        << "EET detected no fault beyond TLP/NoREC/PQS reach";
    EXPECT_TRUE(rows.at("DOUBLE_NEG_NULL_FALSE").at("EET"))
        << "EET missed the fault designed for its projection lane";

    // The isolation faults and ISO partition the grid: each isolation
    // fault is an ISO-only row (single-session oracles cannot even in
    // principle observe it), and ISO never fires on a single-session
    // fault (the interleaving vocabulary avoids their triggers).
    for (FaultId fault : allFaultIds()) {
        const auto &cells = rows.at(faultName(fault));
        if (isIsolationFault(fault)) {
            EXPECT_TRUE(cells.at("ISO"))
                << "ISO missed " << faultName(fault);
            for (const char *oracle : {"TLP", "NOREC", "PQS", "EET"})
                EXPECT_FALSE(cells.at(oracle))
                    << oracle << " detected the single-session no-op "
                    << faultName(fault);
        } else {
            EXPECT_FALSE(cells.at("ISO"))
                << "ISO fired on single-session fault "
                << faultName(fault);
        }
    }

    std::string rendered = renderMatrix(rows, order);
    std::string golden_path =
        std::string(SQLPP_GOLDEN_DIR) + "/fault_matrix.txt";
    if (std::getenv("SQLPP_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(golden_path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
        out << rendered;
        GTEST_SKIP() << "golden file regenerated: " << golden_path;
    }

    std::ifstream in(golden_path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden file " << golden_path
        << "; run once with SQLPP_UPDATE_GOLDEN=1";
    std::stringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(rendered, expected.str())
        << "detection matrix changed; if intentional, regenerate with "
           "SQLPP_UPDATE_GOLDEN=1";
}

/**
 * The same grid under ExecMode::Batch must reproduce the same golden
 * byte for byte: oracle sensitivity is a property of the engine's
 * semantics and the injected fault, never of the execution pipeline.
 * (On fault-carrying dialects compileVecExpr refuses to vectorize, so
 * the batch pipeline degrades to the row evaluator and fault hooks
 * fire identically; the fault-free control additionally exercises the
 * kernels and must stay silent.) Compares against the golden the
 * optimized-mode test maintains — under SQLPP_UPDATE_GOLDEN this test
 * skips so the file is written exactly once.
 */
TEST(OracleFaultMatrixTest, BatchModeMatchesSameGolden)
{
    std::string golden_path =
        std::string(SQLPP_GOLDEN_DIR) + "/fault_matrix.txt";
    if (std::getenv("SQLPP_UPDATE_GOLDEN") != nullptr)
        GTEST_SKIP() << "golden maintained by the optimized-mode test";

    std::string rendered = renderMatrixForMode(ExecMode::Batch);

    std::ifstream in(golden_path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden file " << golden_path
        << "; run once with SQLPP_UPDATE_GOLDEN=1";
    std::stringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(rendered, expected.str())
        << "batch-mode detection matrix diverged from the row-mode "
           "golden: the execution pipeline changed what an oracle "
           "can see";
}

} // namespace
} // namespace sqlpp
