/**
 * @file
 * Dialect layer tests: capability validation, profile diversity, and
 * the Connection adapter (including CrateDB-style REFRESH visibility).
 */
#include <gtest/gtest.h>

#include "dialect/connection.h"
#include "dialect/profile.h"

namespace sqlpp {
namespace {

const DialectProfile &
dialect(const std::string &name)
{
    const DialectProfile *profile = findDialect(name);
    EXPECT_NE(profile, nullptr) << name;
    return *profile;
}

TEST(ProfilesTest, SeventeenCampaignDialectsPlusPostgres)
{
    EXPECT_EQ(campaignDialects().size(), 17u);
    EXPECT_EQ(allDialectProfiles().size(), 18u);
    EXPECT_NE(findDialect("postgres-like"), nullptr);
    EXPECT_EQ(findDialect("oracle-like"), nullptr);
}

TEST(ProfilesTest, Table2FactsHold)
{
    // Facts the paper states explicitly.
    EXPECT_FALSE(dialect("cratedb-like")
                     .supportsStatement(StmtKind::CreateIndex));
    EXPECT_TRUE(dialect("cratedb-like").requiresRefreshAfterInsert);
    EXPECT_TRUE(
        dialect("mysql-like").supportsBinaryOp(BinaryOp::NullSafeEq));
    EXPECT_FALSE(
        dialect("mysql-like").supportsJoin(JoinType::Full));
    EXPECT_FALSE(dialect("sqlite-like").behavior.staticTyping);
    EXPECT_TRUE(dialect("postgres-like").behavior.staticTyping);
    EXPECT_TRUE(
        dialect("sqlite-like").supportsBinaryOp(BinaryOp::Glob));
    EXPECT_FALSE(
        dialect("postgres-like").supportsBinaryOp(BinaryOp::Glob));
}

TEST(ProfilesTest, EveryDialectSupportsTheCommonCore)
{
    for (const DialectProfile &profile : allDialectProfiles()) {
        EXPECT_TRUE(profile.supportsStatement(StmtKind::CreateTable))
            << profile.name;
        EXPECT_TRUE(profile.supportsStatement(StmtKind::Insert))
            << profile.name;
        EXPECT_TRUE(profile.supportsStatement(StmtKind::Select))
            << profile.name;
        EXPECT_TRUE(profile.supportsJoin(JoinType::Inner))
            << profile.name;
        EXPECT_TRUE(profile.supportsBinaryOp(BinaryOp::Eq))
            << profile.name;
        EXPECT_TRUE(profile.supportsType(DataType::Int)) << profile.name;
        EXPECT_TRUE(profile.supportsFunction("COUNT")) << profile.name;
    }
}

TEST(ProfilesTest, DialectMatricesAreDiverse)
{
    // No two dialects should expose an identical capability surface;
    // dialect diversity is the premise of the whole platform.
    auto signature = [](const DialectProfile &p) {
        std::string sig;
        for (StmtKind kind : p.statements)
            sig += std::to_string(static_cast<int>(kind)) + ",";
        sig += "|";
        for (BinaryOp op : p.binaryOps)
            sig += std::to_string(static_cast<int>(op)) + ",";
        sig += "|";
        for (const std::string &fn : p.functions)
            sig += fn + ",";
        sig += "|";
        for (JoinType join : p.joins)
            sig += std::to_string(static_cast<int>(join)) + ",";
        sig += p.behavior.staticTyping ? "S" : "D";
        return sig;
    };
    std::set<std::string> signatures;
    for (const DialectProfile &profile : allDialectProfiles())
        signatures.insert(signature(profile));
    EXPECT_EQ(signatures.size(), allDialectProfiles().size());
}

TEST(ProfilesTest, EveryCampaignDialectHasGroundTruthBugs)
{
    for (const DialectProfile *profile : campaignDialects())
        EXPECT_GT(profile->faults.size(), 0u) << profile->name;
    EXPECT_EQ(dialect("postgres-like").faults.size(), 0u);
    // Umbra-like and cratedb-like carry the heaviest load (Table 2).
    EXPECT_GE(dialect("umbra-like").faults.size(), 8u);
    EXPECT_GE(dialect("cratedb-like").faults.size(), 10u);
    EXPECT_LE(dialect("mysql-like").faults.size(), 2u);
}

TEST(ValidationTest, UnsupportedFeaturesAreSyntaxErrors)
{
    Connection pg(dialect("postgres-like"));
    ASSERT_TRUE(pg.execute("CREATE TABLE t0 (c0 INT)").isOk());
    // <=> is MySQL-only.
    auto result = pg.execute("SELECT * FROM t0 WHERE c0 <=> 1");
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::SyntaxError);
    // GLOB is SQLite-only.
    EXPECT_FALSE(
        pg.execute("SELECT * FROM t0 WHERE 'a' GLOB 'a'").isOk());

    Connection mysql(dialect("mysql-like"));
    ASSERT_TRUE(mysql.execute("CREATE TABLE t0 (c0 INT)").isOk());
    EXPECT_TRUE(
        mysql.execute("SELECT * FROM t0 WHERE c0 <=> 1").isOk());
    EXPECT_FALSE(mysql.execute("SELECT 'a' || 'b'").isOk());
}

TEST(ValidationTest, StatementLevelGaps)
{
    Connection crate(dialect("cratedb-like"));
    ASSERT_TRUE(crate.execute("CREATE TABLE t0 (c0 INT)").isOk());
    auto result = crate.execute("CREATE INDEX i0 ON t0(c0)");
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::SyntaxError);

    Connection virtuoso(dialect("virtuoso-like"));
    ASSERT_TRUE(virtuoso.execute("CREATE TABLE t0 (c0 INT)").isOk());
    EXPECT_FALSE(
        virtuoso.execute("CREATE VIEW v0 AS SELECT * FROM t0").isOk());
    EXPECT_FALSE(
        virtuoso
            .execute("SELECT * FROM t0 WHERE c0 IN (SELECT 1)")
            .isOk());
    EXPECT_FALSE(virtuoso.execute("SELECT SIN(1)").isOk());
}

TEST(ValidationTest, UnsupportedFunctionsAndJoins)
{
    Connection virtuoso(dialect("virtuoso-like"));
    ASSERT_TRUE(virtuoso.execute("CREATE TABLE t0 (c0 INT)").isOk());
    ASSERT_TRUE(virtuoso.execute("CREATE TABLE t1 (c0 INT)").isOk());
    EXPECT_FALSE(virtuoso
                     .execute("SELECT * FROM t0 RIGHT JOIN t1 "
                              "ON t0.c0 = t1.c0")
                     .isOk());
    EXPECT_TRUE(virtuoso
                    .execute("SELECT * FROM t0 LEFT JOIN t1 "
                             "ON t0.c0 = t1.c0")
                    .isOk());
    EXPECT_FALSE(virtuoso.execute("SELECT TRUE").isOk());
}

TEST(ValidationTest, ClauseGaps)
{
    Connection cubrid(dialect("cubrid-like"));
    ASSERT_TRUE(cubrid.execute("CREATE TABLE t0 (c0 INT)").isOk());
    EXPECT_TRUE(cubrid.execute("SELECT c0 FROM t0 LIMIT 1").isOk());
    EXPECT_FALSE(
        cubrid.execute("SELECT c0 FROM t0 LIMIT 1 OFFSET 1").isOk());

    Connection firebird(dialect("firebird-like"));
    ASSERT_TRUE(firebird.execute("CREATE TABLE t0 (c0 INT)").isOk());
    EXPECT_FALSE(
        firebird.execute("INSERT INTO t0 VALUES (1), (2)").isOk());
    EXPECT_TRUE(firebird.execute("INSERT INTO t0 VALUES (1)").isOk());
}

TEST(ConnectionTest, RefreshVisibilitySemantics)
{
    Connection crate(dialect("cratedb-like"));
    ASSERT_TRUE(crate.execute("CREATE TABLE t0 (c0 INT)").isOk());
    ASSERT_TRUE(crate.execute("INSERT INTO t0 VALUES (1)").isOk());
    // Not yet visible.
    auto before = crate.execute("SELECT * FROM t0");
    ASSERT_TRUE(before.isOk());
    EXPECT_EQ(before.value().rowCount(), 0u);
    EXPECT_EQ(crate.pendingRows(), 1u);
    // REFRESH makes it visible.
    ASSERT_TRUE(crate.execute("REFRESH t0").isOk());
    auto after = crate.execute("SELECT * FROM t0");
    ASSERT_TRUE(after.isOk());
    EXPECT_EQ(after.value().rowCount(), 1u);
    EXPECT_EQ(crate.pendingRows(), 0u);
}

TEST(ConnectionTest, RefreshRejectedElsewhere)
{
    Connection sqlite(dialect("sqlite-like"));
    auto result = sqlite.execute("REFRESH t0");
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::SyntaxError);
}

TEST(ConnectionTest, ExecuteAdaptedFlushesAutomatically)
{
    Connection crate(dialect("cratedb-like"));
    ASSERT_TRUE(crate.execute("CREATE TABLE t0 (c0 INT)").isOk());
    ASSERT_TRUE(
        crate.executeAdapted("INSERT INTO t0 VALUES (1)").isOk());
    auto result = crate.execute("SELECT * FROM t0");
    ASSERT_TRUE(result.isOk());
    EXPECT_EQ(result.value().rowCount(), 1u);
}

TEST(ConnectionTest, AdaptedSurfacesDeferredConstraintErrors)
{
    Connection crate(dialect("cratedb-like"));
    ASSERT_TRUE(
        crate.execute("CREATE TABLE t0 (c0 INT PRIMARY KEY)").isOk());
    ASSERT_TRUE(
        crate.executeAdapted("INSERT INTO t0 VALUES (1)").isOk());
    auto dup = crate.executeAdapted("INSERT INTO t0 VALUES (1)");
    ASSERT_FALSE(dup.isOk());
    EXPECT_EQ(dup.status().code(), ErrorCode::RuntimeError);
}

TEST(ConnectionTest, RefreshKeepsUnattemptedInsertsOnFailure)
{
    // Regression: a failed flush used to drop *every* pending insert,
    // including ones that were never attempted.
    Connection crate(dialect("cratedb-like"));
    ASSERT_TRUE(
        crate.execute("CREATE TABLE t0 (c0 INT PRIMARY KEY)").isOk());
    ASSERT_TRUE(crate.execute("INSERT INTO t0 VALUES (1)").isOk());
    ASSERT_TRUE(crate.execute("INSERT INTO t0 VALUES (1)").isOk());
    ASSERT_TRUE(crate.execute("INSERT INTO t0 VALUES (2)").isOk());
    ASSERT_EQ(crate.pendingRows(), 3u);

    // Flush: the first insert lands, the duplicate fails and is
    // consumed, the third was never attempted and must stay buffered.
    auto refreshed = crate.execute("REFRESH t0");
    ASSERT_FALSE(refreshed.isOk());
    EXPECT_EQ(refreshed.status().code(), ErrorCode::RuntimeError);
    EXPECT_EQ(crate.pendingRows(), 1u);

    // The surviving insert flushes cleanly on the next REFRESH.
    ASSERT_TRUE(crate.execute("REFRESH t0").isOk());
    auto rows = crate.execute("SELECT * FROM t0");
    ASSERT_TRUE(rows.isOk());
    EXPECT_EQ(rows.value().rowCount(), 2u);
}

TEST(ConnectionTest, AdaptedDoesNotBlameEarlierStatementsFailure)
{
    // Regression: when the implicit REFRESH failed on an *older*
    // buffered insert, executeAdapted used to discard the current
    // INSERT (never attempted) and report the old error against it.
    Connection crate(dialect("cratedb-like"));
    ASSERT_TRUE(
        crate.execute("CREATE TABLE t0 (c0 INT PRIMARY KEY)").isOk());
    ASSERT_TRUE(
        crate.executeAdapted("INSERT INTO t0 VALUES (1)").isOk());
    // Buffer a doomed duplicate via the raw (non-adapted) path.
    ASSERT_TRUE(crate.execute("INSERT INTO t0 VALUES (1)").isOk());

    // The new INSERT is fine; the implicit flush fails on the older
    // duplicate, so this statement keeps its success and its insert
    // stays pending.
    auto result = crate.executeAdapted("INSERT INTO t0 VALUES (2)");
    EXPECT_TRUE(result.isOk());
    EXPECT_EQ(crate.pendingRows(), 1u);

    ASSERT_TRUE(crate.execute("REFRESH t0").isOk());
    auto rows = crate.execute("SELECT * FROM t0");
    ASSERT_TRUE(rows.isOk());
    EXPECT_EQ(rows.value().rowCount(), 2u);
}

TEST(ConnectionTest, AdaptedStillReportsOwnInsertsFailure)
{
    // The adapter's contract is unchanged when the failing insert IS
    // this statement's: the constraint error is its verdict.
    Connection crate(dialect("cratedb-like"));
    ASSERT_TRUE(
        crate.execute("CREATE TABLE t0 (c0 INT PRIMARY KEY)").isOk());
    ASSERT_TRUE(
        crate.executeAdapted("INSERT INTO t0 VALUES (1)").isOk());
    auto dup = crate.executeAdapted("INSERT INTO t0 VALUES (1)");
    ASSERT_FALSE(dup.isOk());
    EXPECT_EQ(dup.status().code(), ErrorCode::RuntimeError);
    EXPECT_EQ(crate.pendingRows(), 0u);
}

TEST(ConnectionTest, TakeNewPlansDrainsIncrementally)
{
    Connection sqlite(dialect("sqlite-like"));
    ASSERT_TRUE(sqlite.execute("CREATE TABLE t0 (c0 INT)").isOk());
    ASSERT_TRUE(sqlite.execute("SELECT * FROM t0").isOk());
    auto first = sqlite.takeNewPlans();
    EXPECT_EQ(first.size(), sqlite.seenPlans().size());
    EXPECT_GE(first.size(), 1u);
    // Drained: a repeat of the same plan adds nothing new.
    ASSERT_TRUE(sqlite.execute("SELECT * FROM t0").isOk());
    EXPECT_TRUE(sqlite.takeNewPlans().empty());
    // A structurally new query yields exactly the new fingerprints.
    ASSERT_TRUE(
        sqlite.execute("SELECT c0 FROM t0 WHERE c0 > 1").isOk());
    auto second = sqlite.takeNewPlans();
    EXPECT_GE(second.size(), 1u);
    for (uint64_t fingerprint : second)
        EXPECT_TRUE(sqlite.seenPlans().count(fingerprint));
}

TEST(ConnectionTest, DialectFaultsAreLive)
{
    // The sqlite-like profile must actually exhibit Listing 4.
    Connection sqlite(dialect("sqlite-like"));
    ASSERT_TRUE(sqlite.execute("CREATE TABLE t0 (c0 INT)").isOk());
    ASSERT_TRUE(sqlite.execute("CREATE TABLE t1 (c0 INT)").isOk());
    ASSERT_TRUE(sqlite.execute("INSERT INTO t0 VALUES (1)").isOk());
    ASSERT_TRUE(sqlite.execute("INSERT INTO t1 VALUES (1), (9)").isOk());
    // The buggy flattener pass needs a WHERE clause to run.
    auto clean = sqlite.execute(
        "SELECT * FROM t0 RIGHT JOIN t1 ON t0.c0 = t1.c0");
    ASSERT_TRUE(clean.isOk());
    EXPECT_EQ(clean.value().rowCount(), 2u);
    auto result = sqlite.execute(
        "SELECT * FROM t0 RIGHT JOIN t1 ON t0.c0 = t1.c0 WHERE TRUE");
    ASSERT_TRUE(result.isOk());
    EXPECT_EQ(result.value().rowCount(), 1u); // buggy: should be 2
}

TEST(ConnectionTest, TypingDisciplineVisibleThroughConnection)
{
    Connection pg(dialect("postgres-like"));
    ASSERT_TRUE(pg.execute("CREATE TABLE t0 (c0 INT)").isOk());
    EXPECT_FALSE(pg.execute("SELECT * FROM t0 WHERE c0").isOk());

    Connection sqlite(dialect("sqlite-like"));
    ASSERT_TRUE(sqlite.execute("CREATE TABLE t0 (c0 INT)").isOk());
    EXPECT_TRUE(sqlite.execute("SELECT * FROM t0 WHERE c0").isOk());
}

TEST(ConnectionTest, StatementsIssuedCounter)
{
    Connection sqlite(dialect("sqlite-like"));
    EXPECT_EQ(sqlite.statementsIssued(), 0u);
    (void)sqlite.execute("CREATE TABLE t0 (c0 INT)");
    (void)sqlite.execute("SELECT 1");
    EXPECT_EQ(sqlite.statementsIssued(), 2u);
}

} // namespace
} // namespace sqlpp
