/**
 * @file
 * ProgressBoard tests: snapshot aggregation, shard lifecycle, stall
 * diagnosis, seqlock strings, and the two renderers (/status JSON and
 * the --progress line) fed from the same snapshot.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "core/progress.h"

namespace sqlpp {
namespace {

class ProgressTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        // beginCampaign zeroes every cell, so each test starts clean.
        ProgressBoard::instance().beginCampaign(/*workers=*/2,
                                                /*shards=*/3,
                                                /*checks_target=*/300);
        ProgressBoard::instance().setStallThresholdSeconds(10.0);
    }
};

TEST_F(ProgressTest, SnapshotAggregatesShardCells)
{
    ProgressBoard &board = ProgressBoard::instance();
    board.initShard(0, "sqlite-like", 7, 100, 0.0);
    board.initShard(1, "slice1", 8, 100, 2.5);
    board.initShard(2, "slice2", 9, 100, 0.0);
    board.setShardState(0, ShardState::Running);

    {
        ProgressShardScope scope(0);
        progress::noteSetup(true);
        progress::noteSetup(false);
        progress::noteCheck(true, 11);
        progress::noteCheck(false, 12);
        progress::noteBug();
        progress::noteTotals(5, 2, 1);
    }
    board.setShardState(0, ShardState::Done);

    CampaignProgress snapshot = board.snapshot();
    EXPECT_TRUE(snapshot.active);
    EXPECT_EQ(snapshot.workers, 2u);
    EXPECT_EQ(snapshot.shardsTotal, 3u);
    EXPECT_EQ(snapshot.shardsDone, 1u);
    EXPECT_EQ(snapshot.checksTarget, 300u);
    EXPECT_EQ(snapshot.checksAttempted, 2u);
    EXPECT_EQ(snapshot.checksValid, 1u);
    EXPECT_EQ(snapshot.bugsDetected, 1u);
    EXPECT_EQ(snapshot.plans, 5u);
    EXPECT_EQ(snapshot.resourceErrors, 2u);

    ASSERT_EQ(snapshot.shards.size(), 3u);
    const ShardProgress &shard = snapshot.shards[0];
    EXPECT_EQ(shard.label, "sqlite-like");
    EXPECT_EQ(shard.state, ShardState::Done);
    EXPECT_EQ(shard.seed, 7u);
    EXPECT_EQ(shard.checksTarget, 100u);
    EXPECT_EQ(shard.checksAttempted, 2u);
    EXPECT_EQ(shard.checksValid, 1u);
    EXPECT_EQ(shard.bugsDetected, 1u);
    EXPECT_EQ(shard.plans, 5u);
    EXPECT_EQ(shard.suppressed, 1u);
    EXPECT_EQ(shard.setupGenerated, 2u);
    EXPECT_EQ(shard.setupSucceeded, 1u);
    EXPECT_EQ(shard.tick, 12u);
    EXPECT_DOUBLE_EQ(shard.validityRate(), 0.5);
    EXPECT_FALSE(shard.stalled);
    EXPECT_EQ(snapshot.shards[1].label, "slice1");
    EXPECT_DOUBLE_EQ(snapshot.shards[1].deadlineSeconds, 2.5);
    EXPECT_EQ(snapshot.shards[1].state, ShardState::Pending);
}

TEST_F(ProgressTest, FinishCampaignFreezesButKeepsCells)
{
    ProgressBoard &board = ProgressBoard::instance();
    board.initShard(0, "sqlite-like", 7, 100, 0.0);
    {
        ProgressShardScope scope(0);
        progress::noteCheck(true, 1);
    }
    board.finishCampaign();
    CampaignProgress snapshot = board.snapshot();
    EXPECT_FALSE(snapshot.active);
    EXPECT_EQ(snapshot.checksAttempted, 1u); // final scrape still works
}

TEST_F(ProgressTest, StallVerdictAppearsAndClears)
{
    ProgressBoard &board = ProgressBoard::instance();
    board.initShard(0, "wedged", 7, 100, 0.0);
    board.setShardState(0, ShardState::Running);
    board.setStallThresholdSeconds(0.02);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));

    // Never advanced: age falls back to the campaign start.
    CampaignProgress stalled = board.snapshot();
    ASSERT_EQ(stalled.shards.size(), 3u);
    EXPECT_TRUE(stalled.shards[0].stalled);
    EXPECT_GT(stalled.shards[0].lastAdvanceSeconds, 0.0);

    // One check clears the verdict; a generous threshold keeps it so.
    board.setStallThresholdSeconds(100.0);
    {
        ProgressShardScope scope(0);
        progress::noteCheck(true, 1);
    }
    EXPECT_FALSE(board.snapshot().shards[0].stalled);

    // Done shards are never stalled, no matter how silent.
    board.setStallThresholdSeconds(0.02);
    board.setShardState(0, ShardState::Done);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    EXPECT_FALSE(board.snapshot().shards[0].stalled);
}

TEST_F(ProgressTest, AbandonedStateComesFromTheHotPath)
{
    ProgressBoard &board = ProgressBoard::instance();
    board.initShard(1, "slice1", 8, 100, 1.0);
    board.setShardState(1, ShardState::Running);
    {
        ProgressShardScope scope(1);
        progress::noteAbandoned();
    }
    CampaignProgress snapshot = board.snapshot();
    EXPECT_EQ(snapshot.shards[1].state, ShardState::Abandoned);
    EXPECT_EQ(snapshot.shardsAbandoned, 1u);
}

TEST_F(ProgressTest, RestoredShardShowsCheckpointTotals)
{
    ProgressBoard &board = ProgressBoard::instance();
    board.initShard(2, "slice2", 9, 100, 0.0);
    board.fillRestoredShard(2, /*attempted=*/100, /*valid=*/80,
                            /*bugs=*/3, /*plans=*/40,
                            /*resource_errors=*/1);
    CampaignProgress snapshot = board.snapshot();
    EXPECT_EQ(snapshot.shards[2].state, ShardState::Restored);
    EXPECT_EQ(snapshot.shards[2].checksAttempted, 100u);
    EXPECT_EQ(snapshot.shardsRestored, 1u);
    EXPECT_EQ(snapshot.checksAttempted, 100u);
}

TEST_F(ProgressTest, BanditLeaderRoundTripsAndTruncates)
{
    ProgressBoard &board = ProgressBoard::instance();
    board.initShard(0, "sqlite-like", 7, 100, 0.0);
    {
        ProgressShardScope scope(0);
        progress::noteBanditLeader("RULE_JOIN_COUNT_2 5/9");
    }
    EXPECT_EQ(board.snapshot().shards[0].banditLeader,
              "RULE_JOIN_COUNT_2 5/9");
    {
        ProgressShardScope scope(0);
        progress::noteBanditLeader(std::string(200, 'x'));
    }
    std::string leader = board.snapshot().shards[0].banditLeader;
    EXPECT_LT(leader.size(), 200u);
    EXPECT_EQ(leader, std::string(leader.size(), 'x'));
}

TEST_F(ProgressTest, ScopesNestAndUnboundNotesAreNoOps)
{
    ProgressBoard &board = ProgressBoard::instance();
    board.initShard(0, "outer", 1, 10, 0.0);
    board.initShard(1, "inner", 2, 10, 0.0);
    {
        ProgressShardScope outer(0);
        {
            ProgressShardScope inner(1);
            progress::noteCheck(true, 5);
        }
        progress::noteCheck(true, 3);
    }
    // Unbound thread: all helpers must be harmless no-ops.
    progress::noteCheck(true, 99);
    progress::noteBug();
    progress::noteTotals(1, 2, 3);
    progress::noteBanditLeader("nobody");
    progress::noteAbandoned();

    CampaignProgress snapshot = board.snapshot();
    EXPECT_EQ(snapshot.shards[0].checksAttempted, 1u);
    EXPECT_EQ(snapshot.shards[0].tick, 3u);
    EXPECT_EQ(snapshot.shards[1].checksAttempted, 1u);
    EXPECT_EQ(snapshot.shards[1].tick, 5u);
    EXPECT_EQ(snapshot.checksAttempted, 2u);
}

TEST_F(ProgressTest, StatusJsonCarriesSchemaAndShards)
{
    ProgressBoard &board = ProgressBoard::instance();
    board.initShard(0, "sqlite-like", 7, 100, 0.0);
    board.setShardState(0, ShardState::Running);
    {
        ProgressShardScope scope(0);
        progress::noteCheck(true, 4);
    }
    std::string json = renderStatusJson(board.snapshot());
    EXPECT_NE(json.find("\"schema\": \"sqlpp.status.v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"sqlite-like\""), std::string::npos);
    EXPECT_NE(json.find("\"shards\""), std::string::npos);
    EXPECT_NE(json.find("\"stalled\""), std::string::npos);
    EXPECT_NE(json.find("\"checks_attempted\": 1"), std::string::npos);
}

TEST_F(ProgressTest, StalledShardJsonEmbedsRecentEvents)
{
    ProgressBoard &board = ProgressBoard::instance();
    board.initShard(0, "wedged", 7, 100, 0.0);
    board.setShardState(0, ShardState::Running);
    board.setStallThresholdSeconds(0.02);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    std::string json = renderStatusJson(board.snapshot());
    EXPECT_NE(json.find("\"stalled\": ["), std::string::npos);
    EXPECT_NE(json.find("recent_events"), std::string::npos);
}

TEST_F(ProgressTest, ProgressLineSummarizesCampaign)
{
    ProgressBoard &board = ProgressBoard::instance();
    board.initShard(0, "sqlite-like", 7, 100, 0.0);
    board.setShardState(0, ShardState::Running);
    {
        ProgressShardScope scope(0);
        progress::noteCheck(true, 1);
        progress::noteCheck(true, 2);
    }
    std::string line = renderProgressLine(board.snapshot());
    EXPECT_NE(line.find("progress:"), std::string::npos);
    EXPECT_NE(line.find("2/300 checks"), std::string::npos);
    EXPECT_NE(line.find("validity"), std::string::npos);
    EXPECT_NE(line.find("bugs"), std::string::npos);
}

} // namespace
} // namespace sqlpp
