/**
 * @file
 * The status-service determinism pin: a polling storm against a live
 * campaign's /status, /metrics, and /trace endpoints must not perturb
 * anything deterministic. Merged stats (CampaignStats operator==, every
 * field), checkpoint payloads, and dossier ids are compared across
 * worker counts 1/2/4 with the storm on, against a quiet 1-worker
 * baseline.
 *
 * Checkpoint payloads are compared key-by-key with the two documented
 * observability-only fields ("worker", "seconds" — wall-clock, never
 * merged; see core/checkpoint.h) removed: everything the deterministic
 * merge consumes must be byte-identical.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "core/progress.h"
#include "core/scheduler.h"
#include "util/metrics.h"
#include "util/status_server.h"
#include "util/trace.h"

namespace sqlpp {
namespace {

struct RunArtifacts
{
    ScheduleReport report;
    /** Normalized checkpoint: shard -> payload entries. */
    std::map<size_t, std::map<std::string, std::string>> checkpoint;
    /** Sorted dossier paths relative to the dossier root (the ids). */
    std::vector<std::string> dossiers;
};

SchedulerConfig
campaignConfig(size_t workers, const std::string &checkpoint_path,
               const std::string &dossier_dir)
{
    SchedulerConfig config;
    config.mode = ScheduleMode::SliceChecks;
    config.workers = workers;
    config.slices = 4;
    config.campaign.dialect = "sqlite-like";
    config.campaign.seed = 7;
    config.campaign.setupStatements = 40;
    config.campaign.checks = 240;
    config.campaign.feedback.updateInterval = 100;
    config.campaign.feedback.ddlFailureLimit = 6;
    config.campaign.generator.depthStep = 80;
    config.checkpointPath = checkpoint_path;
    config.dossierDir = dossier_dir;
    return config;
}

RunArtifacts
runCampaign(size_t workers, bool storm, const std::string &tag)
{
    namespace fs = std::filesystem;
    fs::path root = fs::path(::testing::TempDir()) /
                    ("status_live_" + tag);
    fs::remove_all(root);
    fs::create_directories(root);
    std::string checkpoint_path = (root / "campaign.ckpt").string();
    std::string dossier_dir = (root / "dossiers").string();

    // Shard lanes are keyed by index and reused across in-process
    // runs; start each run from zeroed observability state.
    MetricsRegistry::instance().reset();
    TraceRecorder::instance().reset();

    StatusServer server;
    std::atomic<bool> stop_polling{false};
    std::atomic<uint64_t> polls{0};
    std::vector<std::thread> pollers;
    if (storm) {
        server.handle("/status", [](const HttpRequest &) {
            HttpResponse response;
            response.body = renderStatusJson(
                ProgressBoard::instance().snapshot());
            return response;
        });
        server.handle("/metrics", [](const HttpRequest &) {
            HttpResponse response;
            response.body = exportMetricsPrometheus();
            return response;
        });
        server.handle("/trace", [](const HttpRequest &request) {
            HttpResponse response;
            response.body = exportTraceDeltaJsonl(
                request.queryU64("since", 0));
            return response;
        });
        EXPECT_TRUE(server.start(0).isOk());
        for (size_t t = 0; t < 4; ++t) {
            pollers.emplace_back([&server, &stop_polling, &polls, t] {
                const char *targets[] = {"/status", "/metrics",
                                         "/trace?since=0"};
                size_t i = t;
                while (!stop_polling.load()) {
                    std::string body;
                    if (httpGetLocal(server.port(),
                                     targets[i++ % 3], &body, nullptr)
                            .isOk() &&
                        !body.empty())
                        polls.fetch_add(1);
                }
            });
        }
    }

    RunArtifacts artifacts;
    CampaignScheduler scheduler(
        campaignConfig(workers, checkpoint_path, dossier_dir));
    artifacts.report = scheduler.run();

    if (storm) {
        stop_polling.store(true);
        for (std::thread &poller : pollers)
            poller.join();
        server.stop();
        // The storm must actually have hammered the endpoints.
        EXPECT_GT(polls.load(), 0u);
    }

    CampaignCheckpoint checkpoint;
    EXPECT_TRUE(checkpoint.loadFrom(checkpoint_path).isOk());
    for (auto &[index, payload] : checkpoint.shards) {
        payload.erase("worker");
        payload.erase("seconds");
        artifacts.checkpoint[index] = payload.entries();
    }

    for (const auto &entry :
         fs::recursive_directory_iterator(dossier_dir))
        artifacts.dossiers.push_back(
            fs::relative(entry.path(), dossier_dir).string());
    std::sort(artifacts.dossiers.begin(), artifacts.dossiers.end());

    fs::remove_all(root);
    return artifacts;
}

TEST(StatusLiveTest, PollingStormPerturbsNothingDeterministic)
{
#ifdef SQLPP_NO_STATUS
    GTEST_SKIP() << "status server compiled out (SQLPP_STATUS=OFF)";
#endif
    RunArtifacts baseline =
        runCampaign(/*workers=*/1, /*storm=*/false, "baseline");
    EXPECT_GT(baseline.report.merged.checksAttempted, 100u);
    EXPECT_FALSE(baseline.checkpoint.empty());
    EXPECT_FALSE(baseline.dossiers.empty());

    for (size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
        RunArtifacts stormed = runCampaign(
            workers, /*storm=*/true,
            "storm_w" + std::to_string(workers));
        // CampaignStats operator== covers every merged field: check
        // counters, bug lists, plan fingerprints, curve samples.
        EXPECT_TRUE(stormed.report.merged == baseline.report.merged)
            << "merged stats diverged under polling storm with "
            << workers << " workers";
        EXPECT_EQ(stormed.checkpoint, baseline.checkpoint)
            << "checkpoint payloads diverged with " << workers
            << " workers";
        EXPECT_EQ(stormed.dossiers, baseline.dossiers)
            << "dossier ids diverged with " << workers << " workers";
    }
}

TEST(StatusLiveTest, SchedulerPublishesProgressBoard)
{
    MetricsRegistry::instance().reset();
    TraceRecorder::instance().reset();
    SchedulerConfig config = campaignConfig(2, "", "");
    CampaignScheduler scheduler(config);
    ScheduleReport report = scheduler.run();

    // After the run the board holds the final, frozen campaign state;
    // its totals agree with the deterministic merge.
    CampaignProgress snapshot = ProgressBoard::instance().snapshot();
    EXPECT_FALSE(snapshot.active);
    EXPECT_EQ(snapshot.shardsTotal, 4u);
    EXPECT_EQ(snapshot.shardsDone, 4u);
    EXPECT_EQ(snapshot.checksAttempted,
              report.merged.checksAttempted);
    EXPECT_EQ(snapshot.checksValid, report.merged.checksValid);
    EXPECT_EQ(snapshot.bugsDetected, report.merged.bugsDetected);
    ASSERT_EQ(snapshot.shards.size(), 4u);
    EXPECT_EQ(snapshot.shards[0].label, "slice0");
    EXPECT_EQ(snapshot.shards[0].seed, config.campaign.seed);
}

} // namespace
} // namespace sqlpp
