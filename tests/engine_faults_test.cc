/**
 * @file
 * Fault-injection tests: every injected logic bug must (a) change the
 * behaviour it claims to change and (b) leave a clean engine untouched.
 * These are the ground-truth bugs the oracle and campaign layers hunt.
 */
#include <gtest/gtest.h>

#include "engine/database.h"

namespace sqlpp {
namespace {

Database
faultyDb(FaultId fault)
{
    EngineConfig config;
    config.faults.enable(fault);
    return Database(config);
}

void
seed(Database &db)
{
    ASSERT_TRUE(db.execute("CREATE TABLE t0 (c0 INT, c1 TEXT)").isOk());
    ASSERT_TRUE(db.execute("INSERT INTO t0 VALUES (1, 'a'), (2, 'b'), "
                           "(3, 'c'), (NULL, 'd')")
                    .isOk());
}

size_t
rows(Database &db, const std::string &sql)
{
    auto result = db.execute(sql);
    EXPECT_TRUE(result.isOk()) << sql << ": " << result.status().toString();
    return result.isOk() ? result.value().rowCount() : 0;
}

TEST(FaultMetadataTest, NamesAndDescriptionsExist)
{
    for (FaultId id : allFaultIds()) {
        EXPECT_STRNE(faultName(id), "UNKNOWN_FAULT");
        EXPECT_STRNE(faultDescription(id), "?");
    }
    EXPECT_EQ(allFaultIds().size(), 26u);
}

TEST(FaultMetadataTest, PlannerAndLatentClassification)
{
    EXPECT_TRUE(isPlannerFault(FaultId::OnToWhereRightJoin));
    EXPECT_TRUE(isPlannerFault(FaultId::ConstFoldTrueAbsorbsAnd));
    EXPECT_FALSE(isPlannerFault(FaultId::NotNullTrue));
    EXPECT_FALSE(isPlannerFault(FaultId::DoubleNegNullFalse));
    EXPECT_TRUE(isLatentFault(FaultId::SumEmptyZero));
    EXPECT_FALSE(isLatentFault(FaultId::WhereNullAsTrue));
    EXPECT_FALSE(isLatentFault(FaultId::DoubleNegNullFalse));
    EXPECT_TRUE(isIsolationFault(FaultId::TxnDirtyRead));
    EXPECT_TRUE(isIsolationFault(FaultId::TxnLostUpdate));
    EXPECT_FALSE(isIsolationFault(FaultId::WhereNullAsTrue));
    EXPECT_FALSE(isPlannerFault(FaultId::TxnLostUpdate));
    EXPECT_FALSE(isLatentFault(FaultId::TxnDirtyRead));
}

TEST(FaultSetTest, EnableDisable)
{
    FaultSet faults;
    EXPECT_TRUE(faults.empty());
    faults.enable(FaultId::NotNullTrue);
    EXPECT_TRUE(faults.isEnabled(FaultId::NotNullTrue));
    EXPECT_FALSE(faults.isEnabled(FaultId::WhereNullAsTrue));
    faults.disable(FaultId::NotNullTrue);
    EXPECT_TRUE(faults.empty());
}

TEST(FaultTest, IndexRangeGtIncludesEqual)
{
    Database db = faultyDb(FaultId::IndexRangeGtIncludesEqual);
    seed(db);
    ASSERT_TRUE(db.execute("CREATE INDEX i0 ON t0(c0)").isOk());
    // Optimized: index probe includes c0 = 2; reference is correct.
    EXPECT_EQ(rows(db, "SELECT * FROM t0 WHERE c0 > 2"), 2u);
    auto reference = db.executeReference("SELECT * FROM t0 WHERE c0 > 2");
    EXPECT_EQ(reference.value().rowCount(), 1u);
}

TEST(FaultTest, IndexRangeLtIncludesEqual)
{
    Database db = faultyDb(FaultId::IndexRangeLtIncludesEqual);
    seed(db);
    ASSERT_TRUE(db.execute("CREATE INDEX i0 ON t0(c0)").isOk());
    EXPECT_EQ(rows(db, "SELECT * FROM t0 WHERE c0 < 2"), 2u);
    EXPECT_EQ(
        db.executeReference("SELECT * FROM t0 WHERE c0 < 2")
            .value()
            .rowCount(),
        1u);
}

TEST(FaultTest, IndexSkipsNull)
{
    Database db = faultyDb(FaultId::IndexSkipsNull);
    seed(db);
    ASSERT_TRUE(db.execute("CREATE INDEX i0 ON t0(c0)").isOk());
    EXPECT_EQ(rows(db, "SELECT * FROM t0 WHERE c0 IS NULL"), 0u);
    EXPECT_EQ(db.executeReference("SELECT * FROM t0 WHERE c0 IS NULL")
                  .value()
                  .rowCount(),
              1u);
}

TEST(FaultTest, IndexEqTextCoerce)
{
    Database db = faultyDb(FaultId::IndexEqTextCoerce);
    seed(db);
    ASSERT_TRUE(db.execute("CREATE INDEX i0 ON t0(c0)").isOk());
    // '2' should match nothing (cross-class equality), but the faulty
    // probe coerces it to 2.
    EXPECT_EQ(rows(db, "SELECT * FROM t0 WHERE c0 = '2'"), 1u);
    EXPECT_EQ(db.executeReference("SELECT * FROM t0 WHERE c0 = '2'")
                  .value()
                  .rowCount(),
              0u);
}

TEST(FaultTest, PartialIndexIgnoresPredicate)
{
    Database db = faultyDb(FaultId::PartialIndexIgnoresPredicate);
    seed(db);
    // Partial index over c0 > 2 only contains the row with c0 = 3.
    ASSERT_TRUE(
        db.execute("CREATE INDEX i0 ON t0(c0) WHERE (c0 > 2)").isOk());
    // Query for c0 = 1 wrongly uses the partial index -> misses the row.
    EXPECT_EQ(rows(db, "SELECT * FROM t0 WHERE c0 = 1"), 0u);
    EXPECT_EQ(db.executeReference("SELECT * FROM t0 WHERE c0 = 1")
                  .value()
                  .rowCount(),
              1u);
}

TEST(FaultTest, PushdownThroughOuterJoin)
{
    Database db = faultyDb(FaultId::PushdownThroughOuterJoin);
    seed(db);
    ASSERT_TRUE(db.execute("CREATE TABLE t1 (c0 INT)").isOk());
    ASSERT_TRUE(db.execute("INSERT INTO t1 VALUES (1)").isOk());
    // Correct: LEFT JOIN null-extends rows of t0 unmatched in t1, then
    // the WHERE on t1.c0 IS NULL keeps them (3 rows). Pushing the
    // filter below the join evaluates it before null-extension: t1 has
    // no NULL rows -> every t0 row null-extends -> rows where predicate
    // is later... the shapes differ.
    const char *sql =
        "SELECT * FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0 "
        "WHERE t1.c0 IS NULL";
    auto optimized = db.execute(sql);
    auto reference = db.executeReference(sql);
    ASSERT_TRUE(optimized.isOk());
    ASSERT_TRUE(reference.isOk());
    EXPECT_FALSE(
        optimized.value().sameRowMultiset(reference.value()));
}

TEST(FaultTest, OnToWhereRightJoin)
{
    Database db = faultyDb(FaultId::OnToWhereRightJoin);
    seed(db);
    ASSERT_TRUE(db.execute("CREATE TABLE t1 (c0 INT)").isOk());
    ASSERT_TRUE(db.execute("INSERT INTO t1 VALUES (1), (9)").isOk());
    // The faulty flattener pass only runs for queries with a WHERE
    // clause; without one the plan is correct.
    const char *clean_sql =
        "SELECT * FROM t0 RIGHT JOIN t1 ON t0.c0 = t1.c0";
    EXPECT_EQ(rows(db, clean_sql), 2u);
    const char *sql = "SELECT * FROM t0 RIGHT JOIN t1 ON t0.c0 = t1.c0 "
                      "WHERE TRUE";
    auto optimized = db.execute(sql);
    auto reference = db.executeReference(sql);
    ASSERT_TRUE(optimized.isOk());
    ASSERT_TRUE(reference.isOk());
    // Correct result keeps the unmatched t1 row (9) null-extended; the
    // fault filters it out post-join.
    EXPECT_EQ(reference.value().rowCount(), 2u);
    EXPECT_EQ(optimized.value().rowCount(), 1u);
}

TEST(FaultTest, HashJoinNullMatch)
{
    Database db = faultyDb(FaultId::HashJoinNullMatch);
    seed(db);
    ASSERT_TRUE(db.execute("CREATE TABLE t1 (c0 INT)").isOk());
    ASSERT_TRUE(db.execute("INSERT INTO t1 VALUES (NULL), (2)").isOk());
    const char *sql = "SELECT * FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0";
    // NULL = NULL wrongly matches in the hash join.
    EXPECT_EQ(rows(db, sql), 2u);
    EXPECT_EQ(db.executeReference(sql).value().rowCount(), 1u);
}

TEST(FaultTest, ConstFoldNullifIdentity)
{
    Database db = faultyDb(FaultId::ConstFoldNullifIdentity);
    seed(db);
    // NULLIF(2, 2) is NULL, so no rows qualify; the folding bug turns
    // the predicate into the constant 2 (truthy).
    const char *sql = "SELECT * FROM t0 WHERE NULLIF(2, 2)";
    EXPECT_EQ(rows(db, sql), 4u);
    EXPECT_EQ(db.executeReference(sql).value().rowCount(), 0u);
    // Non-identical arguments are not misfolded.
    EXPECT_EQ(rows(db, "SELECT * FROM t0 WHERE NULLIF(2, 3) = 2"), 4u);
}

TEST(FaultTest, NotNullTrue)
{
    Database db = faultyDb(FaultId::NotNullTrue);
    seed(db);
    // NOT (NULL > 1) is NULL -> excluded normally; fault keeps the
    // NULL-c0 row.
    EXPECT_EQ(rows(db, "SELECT * FROM t0 WHERE NOT (c0 > 1)"), 2u);
    Database clean;
    ASSERT_TRUE(clean.execute("CREATE TABLE t0 (c0 INT)").isOk());
    ASSERT_TRUE(
        clean.execute("INSERT INTO t0 VALUES (1), (NULL)").isOk());
    EXPECT_EQ(rows(clean, "SELECT * FROM t0 WHERE NOT (c0 > 1)"), 1u);
}

TEST(FaultTest, IsNullFalseForBoolNull)
{
    Database db = faultyDb(FaultId::IsNullFalseForBoolNull);
    seed(db);
    // (c0 > 1) IS NULL should keep the NULL-c0 row; the fault reports
    // FALSE for NULLs produced by comparisons.
    EXPECT_EQ(rows(db, "SELECT * FROM t0 WHERE (c0 > 1) IS NULL"), 0u);
    // Plain column NULLs are classified correctly.
    EXPECT_EQ(rows(db, "SELECT * FROM t0 WHERE c0 IS NULL"), 1u);
}

TEST(FaultTest, WhereNullAsTrue)
{
    Database db = faultyDb(FaultId::WhereNullAsTrue);
    seed(db);
    // The NULL-c0 row has a NULL predicate and is wrongly kept.
    EXPECT_EQ(rows(db, "SELECT * FROM t0 WHERE c0 > 1"), 3u);
    // ON clauses are unaffected by the WHERE fault.
    ASSERT_TRUE(db.execute("CREATE TABLE t1 (c0 INT)").isOk());
    ASSERT_TRUE(db.execute("INSERT INTO t1 VALUES (NULL)").isOk());
    EXPECT_EQ(rows(db, "SELECT * FROM t0 INNER JOIN t1 AS x ON "
                       "t0.c0 = x.c0"),
              0u);
}

TEST(FaultTest, NegContextMixedEq)
{
    Database db = faultyDb(FaultId::NegContextMixedEq);
    seed(db);
    // c1 = '1'? No wait: compare TEXT column against integer. Normally
    // '1' = 1 is FALSE (cross-class) in both contexts; under NOT the
    // fault coerces, making NOT('1' = 1) evaluate NOT(TRUE) = FALSE.
    ASSERT_TRUE(db.execute("INSERT INTO t0 VALUES (7, '1')").isOk());
    EXPECT_EQ(rows(db, "SELECT * FROM t0 WHERE c1 = 1"), 0u);
    // Without the fault NOT(c1 = 1) keeps all 5 rows; with it, the
    // row with c1='1' flips to TRUE under NOT and gets dropped.
    EXPECT_EQ(rows(db, "SELECT * FROM t0 WHERE NOT (c1 = 1)"), 4u);
}

TEST(FaultTest, IsTrueFalseTrue)
{
    Database db = faultyDb(FaultId::IsTrueFalseTrue);
    seed(db);
    // (c0 > 99) IS TRUE should keep nothing; the fault reports TRUE for
    // FALSE operands (NULL stays FALSE).
    EXPECT_EQ(rows(db, "SELECT * FROM t0 WHERE (c0 > 99) IS TRUE"), 3u);
}

TEST(FaultTest, DistinctNullCollapse)
{
    Database db = faultyDb(FaultId::DistinctNullCollapse);
    ASSERT_TRUE(db.execute("CREATE TABLE t0 (a INT, b INT)").isOk());
    ASSERT_TRUE(db.execute("INSERT INTO t0 VALUES (1, NULL), (NULL, 2), "
                           "(3, 3)")
                    .isOk());
    // Two distinct NULL-containing rows collapse into one. The fault
    // lives in the shared executor, so the reference pipeline shows it
    // too (which is why only TLP-style client-side recombination can
    // catch it); compare against a clean engine instead.
    EXPECT_EQ(rows(db, "SELECT DISTINCT a, b FROM t0"), 2u);
    Database clean;
    ASSERT_TRUE(clean.execute("CREATE TABLE t0 (a INT, b INT)").isOk());
    ASSERT_TRUE(clean
                    .execute("INSERT INTO t0 VALUES (1, NULL), "
                             "(NULL, 2), (3, 3)")
                    .isOk());
    EXPECT_EQ(rows(clean, "SELECT DISTINCT a, b FROM t0"), 3u);
}

TEST(FaultTest, NullSafeEqBothNullFalse)
{
    Database db = faultyDb(FaultId::NullSafeEqBothNullFalse);
    seed(db);
    EXPECT_EQ(rows(db, "SELECT * FROM t0 WHERE c0 <=> NULL"), 0u);
    Database clean;
    seed(clean);
    EXPECT_EQ(rows(clean, "SELECT * FROM t0 WHERE c0 <=> NULL"), 1u);
}

TEST(FaultTest, SumEmptyZero)
{
    Database db = faultyDb(FaultId::SumEmptyZero);
    ASSERT_TRUE(db.execute("CREATE TABLE t0 (c0 INT)").isOk());
    auto result = db.execute("SELECT SUM(c0) FROM t0");
    ASSERT_TRUE(result.isOk());
    EXPECT_EQ(result.value().rows()[0][0].asInt(), 0); // should be NULL
}

TEST(FaultTest, GroupByNullSeparate)
{
    Database db = faultyDb(FaultId::GroupByNullSeparate);
    ASSERT_TRUE(db.execute("CREATE TABLE t0 (c0 INT)").isOk());
    ASSERT_TRUE(
        db.execute("INSERT INTO t0 VALUES (NULL), (NULL), (1)").isOk());
    EXPECT_EQ(rows(db, "SELECT c0 FROM t0 GROUP BY c0"), 3u);
    Database clean;
    ASSERT_TRUE(clean.execute("CREATE TABLE t0 (c0 INT)").isOk());
    ASSERT_TRUE(
        clean.execute("INSERT INTO t0 VALUES (NULL), (NULL), (1)")
            .isOk());
    EXPECT_EQ(rows(clean, "SELECT c0 FROM t0 GROUP BY c0"), 2u);
}

TEST(FaultTest, LikeUnderscoreLiteral)
{
    Database db = faultyDb(FaultId::LikeUnderscoreLiteral);
    seed(db);
    // 'a' LIKE '_' should match every 1-char string; the fault demands
    // a literal underscore.
    EXPECT_EQ(rows(db, "SELECT * FROM t0 WHERE c1 LIKE '_'"), 0u);
    ASSERT_TRUE(db.execute("INSERT INTO t0 VALUES (8, '_')").isOk());
    EXPECT_EQ(rows(db, "SELECT * FROM t0 WHERE c1 LIKE '_'"), 1u);
}

/**
 * Differential property: with NO faults enabled, the optimized pipeline
 * must agree with the reference pipeline on a broad query matrix.
 */
class CleanDifferentialTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CleanDifferentialTest, OptimizedEqualsReference)
{
    Database db;
    ASSERT_TRUE(
        db.execute("CREATE TABLE t0 (c0 INT, c1 TEXT, c2 BOOLEAN)")
            .isOk());
    ASSERT_TRUE(db.execute("CREATE TABLE t1 (c0 INT)").isOk());
    ASSERT_TRUE(db.execute("INSERT INTO t0 VALUES "
                           "(1, 'a', TRUE), (2, 'b', FALSE), "
                           "(NULL, 'c', NULL), (3, NULL, TRUE), "
                           "(2, '2', FALSE)")
                    .isOk());
    ASSERT_TRUE(
        db.execute("INSERT INTO t1 VALUES (2), (3), (NULL), (9)")
            .isOk());
    ASSERT_TRUE(db.execute("CREATE INDEX i0 ON t0(c0)").isOk());
    ASSERT_TRUE(db.execute("CREATE INDEX i1 ON t1(c0)").isOk());

    const char *sql = GetParam();
    auto optimized = db.execute(sql);
    auto reference = db.executeReference(sql);
    ASSERT_EQ(optimized.isOk(), reference.isOk()) << sql;
    if (optimized.isOk()) {
        EXPECT_TRUE(
            optimized.value().sameRowMultiset(reference.value()))
            << sql << "\nOPT:\n"
            << optimized.value().toString() << "REF:\n"
            << reference.value().toString();
    }
}

INSTANTIATE_TEST_SUITE_P(
    QueryMatrix, CleanDifferentialTest,
    ::testing::Values(
        "SELECT * FROM t0 WHERE c0 > 1",
        "SELECT * FROM t0 WHERE c0 >= 2 AND c1 <> 'q'",
        "SELECT * FROM t0 WHERE c0 < 3",
        "SELECT * FROM t0 WHERE c0 <= 2",
        "SELECT * FROM t0 WHERE c0 = 2",
        "SELECT * FROM t0 WHERE c0 IS NULL",
        "SELECT * FROM t0 WHERE c0 = '2'",
        "SELECT * FROM t0 WHERE NULLIF(2, 2) IS NULL",
        "SELECT * FROM t0 WHERE NOT (c0 > 1)",
        "SELECT * FROM t0 WHERE (c0 > 1) IS NULL",
        "SELECT * FROM t0 WHERE c0 <=> NULL",
        "SELECT * FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0",
        "SELECT * FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0",
        "SELECT * FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0 "
        "WHERE t1.c0 IS NULL",
        "SELECT * FROM t0 RIGHT JOIN t1 ON t0.c0 = t1.c0",
        "SELECT * FROM t0 FULL JOIN t1 ON t0.c0 = t1.c0",
        "SELECT * FROM t0 CROSS JOIN t1",
        "SELECT DISTINCT c0 FROM t0",
        "SELECT c0, COUNT(*) FROM t0 GROUP BY c0",
        "SELECT SUM(c0) FROM t0 WHERE c0 > 99",
        "SELECT * FROM t0 WHERE c0 IN (SELECT c0 FROM t1)",
        "SELECT * FROM t0 WHERE EXISTS "
        "(SELECT 1 FROM t1 WHERE t1.c0 = t0.c0)",
        "SELECT (SELECT MAX(c0) FROM t1) FROM t0",
        "SELECT * FROM (SELECT c0 FROM t0 WHERE c0 > 1) AS s "
        "WHERE s.c0 < 3",
        "SELECT * FROM t0 WHERE c1 LIKE '_'",
        "SELECT * FROM t0 ORDER BY c0 DESC LIMIT 3"));

} // namespace
} // namespace sqlpp
