/**
 * @file
 * Transaction property tests: for 500 generated single-session
 * scripts, (1) running the script inside one BEGIN … COMMIT block is
 * observationally identical to auto-commit — statement by statement
 * and in final committed state — and (2) ROLLBACK restores the exact
 * pre-transaction snapshot. Both hold under the row and the batch
 * execution pipelines.
 */
#include <gtest/gtest.h>

#include "core/baseline.h"
#include "core/generator.h"
#include "engine/database.h"
#include "parser/parser.h"

namespace sqlpp {
namespace {

constexpr size_t kScripts = 500;
constexpr size_t kSetupStatements = 6;
constexpr size_t kSelects = 3;

std::vector<std::string>
generateScript(uint64_t seed)
{
    FeatureRegistry registry;
    OpenGate gate;
    SchemaModel model;
    GeneratorConfig config;
    config.seed = seed;
    AdaptiveGenerator gen(config, registry, gate, model);
    std::vector<std::string> script;
    for (size_t i = 0; i < kSetupStatements; ++i) {
        GeneratedStatement stmt = gen.generateSetupStatement();
        gen.noteExecution(stmt, true);
        script.push_back(stmt.text);
    }
    for (size_t i = 0; i < kSelects; ++i)
        script.push_back(gen.generateSelect().text);
    return script;
}

/** One statement's observable outcome: error code or rendered rows. */
std::string
outcomeOf(const StatusOr<ResultSet> &result)
{
    if (!result.isOk())
        return "error: " + result.status().toString();
    std::string out = "rows:";
    for (const Row &row : result.value().rows()) {
        out += " (";
        for (size_t i = 0; i < row.size(); ++i) {
            if (i > 0)
                out += ",";
            out += row[i].literal();
        }
        out += ")";
    }
    return out;
}

StatusOr<ResultSet>
run(Database &db, const std::string &sql, ExecMode mode)
{
    auto parsed = parseStatement(sql);
    if (!parsed.isOk())
        return parsed.status();
    return db.executeStmt(*parsed.value(), mode, 0);
}

/** Committed state: every table's rows, in order, plus object names. */
std::string
committedState(const Database &db)
{
    std::string out;
    for (const std::string &name : db.catalog().tableNames()) {
        out += name + ":";
        const StoredTable *table = db.catalog().table(name);
        for (const Row &row : table->rows) {
            out += " (";
            for (size_t i = 0; i < row.size(); ++i) {
                if (i > 0)
                    out += ",";
                out += row[i].literal();
            }
            out += ")";
        }
        out += "\n";
    }
    for (const std::string &name : db.catalog().viewNames())
        out += "view " + name + "\n";
    return out;
}

class TxnPropertyTest : public ::testing::TestWithParam<ExecMode>
{
};

TEST_P(TxnPropertyTest, WrappedScriptMatchesAutoCommit)
{
    ExecMode mode = GetParam();
    for (size_t i = 0; i < kScripts; ++i) {
        std::vector<std::string> script = generateScript(1000 + i);

        Database plain;
        std::vector<std::string> plain_outcomes;
        for (const std::string &sql : script)
            plain_outcomes.push_back(outcomeOf(run(plain, sql, mode)));

        Database wrapped;
        ASSERT_TRUE(run(wrapped, "BEGIN", mode).isOk());
        for (size_t j = 0; j < script.size(); ++j) {
            std::string outcome =
                outcomeOf(run(wrapped, script[j], mode));
            ASSERT_EQ(outcome, plain_outcomes[j])
                << "script " << i << " stmt " << j << ": "
                << script[j];
        }
        ASSERT_TRUE(run(wrapped, "COMMIT", mode).isOk())
            << "script " << i;
        std::string all;
        for (const std::string &sql : script)
            all += sql + "\n";
        ASSERT_EQ(committedState(wrapped), committedState(plain))
            << "script " << i << ":\n"
            << all;
    }
}

TEST_P(TxnPropertyTest, RollbackRestoresPreTxnSnapshot)
{
    ExecMode mode = GetParam();
    for (size_t i = 0; i < kScripts; ++i) {
        std::vector<std::string> script = generateScript(5000 + i);

        Database db;
        for (size_t j = 0; j < kSetupStatements; ++j)
            (void)run(db, script[j], mode);
        std::string before = committedState(db);

        ASSERT_TRUE(run(db, "BEGIN", mode).isOk());
        // Replay the whole script inside the transaction: duplicate
        // DDL errors are fine (and expected), inserts mutate the
        // private version, selects read it.
        for (const std::string &sql : script)
            (void)run(db, sql, mode);
        ASSERT_TRUE(run(db, "ROLLBACK", mode).isOk());
        ASSERT_EQ(committedState(db), before) << "script " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Modes, TxnPropertyTest,
                         ::testing::Values(ExecMode::Optimized,
                                           ExecMode::Batch),
                         [](const auto &info) {
                             return info.param == ExecMode::Batch
                                        ? "Batch"
                                        : "Row";
                         });

} // namespace
} // namespace sqlpp
