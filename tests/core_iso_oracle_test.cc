/**
 * @file
 * IsolationOracle tests: silent on fault-free engines, detects every
 * fault of the 60-block, deterministic per query shape, inapplicable
 * where transactions are unsupported — and the single-session oracles
 * stay structurally blind to isolation faults.
 */
#include <gtest/gtest.h>

#include "core/oracle.h"
#include "parser/parser.h"

namespace sqlpp {
namespace {

DialectProfile
isoProfile(std::initializer_list<FaultId> faults)
{
    DialectProfile profile = *findDialect("postgres-like");
    profile.name = "iso-test";
    profile.faults = FaultSet{};
    for (FaultId id : faults)
        profile.faults.enable(id);
    return profile;
}

OracleResult
runIsoShape(Connection &conn, const std::string &predicate)
{
    IsolationOracle iso;
    auto base = parseStatement("SELECT * FROM t0");
    auto pred = parseExpression(predicate);
    EXPECT_TRUE(base.isOk());
    EXPECT_TRUE(pred.isOk());
    return iso.check(conn,
                     static_cast<const SelectStmt &>(*base.value()),
                     *pred.value());
}

const char *kPredicates[] = {"t0.c0 > 1", "t0.c0 < 5", "t0.c0 = 3",
                             "t0.c0 >= 0", "t0.c0 <= 9"};

TEST(IsolationOracleTest, PassesOnFaultFreeEngine)
{
    DialectProfile profile = isoProfile({});
    Connection conn(profile);
    for (const char *p : kPredicates) {
        OracleResult result = runIsoShape(conn, p);
        EXPECT_EQ(result.outcome, OracleOutcome::Passed)
            << p << ": " << result.details;
        EXPECT_FALSE(result.queries.empty());
    }
}

TEST(IsolationOracleTest, PassesWithSingleSessionFaultsEnabled)
{
    // Single-session faults must not fire inside schedules (the
    // vocabulary excludes their triggers), so ISO stays quiet even on
    // heavily faulted engines — its matrix column is isolation-only.
    DialectProfile profile = isoProfile(
        {FaultId::WhereNullAsTrue, FaultId::NotNullTrue,
         FaultId::SumEmptyZero, FaultId::DistinctNullCollapse,
         FaultId::HashJoinNullMatch, FaultId::LikeUnderscoreLiteral});
    Connection conn(profile);
    for (const char *p : kPredicates) {
        OracleResult result = runIsoShape(conn, p);
        EXPECT_EQ(result.outcome, OracleOutcome::Passed)
            << p << ": " << result.details;
    }
}

TEST(IsolationOracleTest, DetectsEveryIsolationFault)
{
    for (FaultId fault :
         {FaultId::TxnDirtyRead, FaultId::TxnNonRepeatableRead,
          FaultId::TxnPhantomClaimedSnapshot, FaultId::TxnLostUpdate}) {
        DialectProfile profile = isoProfile({fault});
        Connection conn(profile);
        OracleResult result = runIsoShape(conn, "t0.c0 > 1");
        EXPECT_EQ(result.outcome, OracleOutcome::Bug)
            << faultName(fault) << ": " << result.details;
        EXPECT_NE(result.details.find("isolation fault"),
                  std::string::npos);
        // The evidence is the tick-annotated schedule (dossier form).
        bool has_tick = false;
        for (const std::string &line : result.queries) {
            if (line.find(" s0: ") != std::string::npos ||
                line.find(" s1: ") != std::string::npos)
                has_tick = true;
        }
        EXPECT_TRUE(has_tick) << faultName(fault);
    }
}

TEST(IsolationOracleTest, DeterministicPerShape)
{
    DialectProfile profile = isoProfile({FaultId::TxnDirtyRead});
    Connection a(profile);
    Connection b(profile);
    OracleResult first = runIsoShape(a, "t0.c0 > 1");
    OracleResult second = runIsoShape(b, "t0.c0 > 1");
    EXPECT_EQ(first.outcome, second.outcome);
    EXPECT_EQ(first.details, second.details);
    EXPECT_EQ(first.queries, second.queries);
}

TEST(IsolationOracleTest, InapplicableWithoutTransactions)
{
    for (const char *dialect : {"cratedb-like", "risingwave-like"}) {
        const DialectProfile *profile = findDialect(dialect);
        ASSERT_NE(profile, nullptr);
        Connection conn(*profile);
        OracleResult result = runIsoShape(conn, "t0.c0 > 1");
        EXPECT_EQ(result.outcome, OracleOutcome::Inapplicable)
            << dialect;
    }
}

TEST(IsolationOracleTest, FactoryKnowsIso)
{
    auto oracle = makeOracle("iso");
    ASSERT_NE(oracle, nullptr);
    EXPECT_STREQ(oracle->name(), "ISO");
}

TEST(IsolationOracleTest, SingleSessionOraclesAreBlind)
{
    // The structural blindness the tentpole exists to fix: every
    // pre-existing oracle runs one session with auto-commit, where the
    // 60-block is a no-op — none may flag a bug.
    DialectProfile profile = isoProfile(
        {FaultId::TxnDirtyRead, FaultId::TxnNonRepeatableRead,
         FaultId::TxnPhantomClaimedSnapshot, FaultId::TxnLostUpdate});
    for (const char *name : {"TLP", "NOREC", "PQS", "EET"}) {
        auto oracle = makeOracle(name);
        ASSERT_NE(oracle, nullptr);
        Connection conn(profile);
        ASSERT_TRUE(
            conn.execute("CREATE TABLE t0 (c0 INT, c1 TEXT)").isOk());
        ASSERT_TRUE(conn.execute("INSERT INTO t0 VALUES (1, 'a'), "
                                 "(2, 'b'), (NULL, 'c')")
                        .isOk());
        auto base = parseStatement("SELECT * FROM t0");
        for (const char *p : kPredicates) {
            auto pred = parseExpression(p);
            ASSERT_TRUE(pred.isOk());
            OracleResult result = oracle->check(
                *&conn,
                static_cast<const SelectStmt &>(*base.value()),
                *pred.value());
            EXPECT_NE(result.outcome, OracleOutcome::Bug)
                << name << " flagged " << p << ": " << result.details;
        }
    }
}

} // namespace
} // namespace sqlpp
