/**
 * @file
 * Unit tests for the SQL lexer.
 */
#include <gtest/gtest.h>

#include "parser/lexer.h"
#include "parser/parser.h"

namespace sqlpp {
namespace {

std::vector<Token>
lex(const std::string &sql)
{
    auto result = tokenize(sql);
    EXPECT_TRUE(result.isOk()) << result.status().toString();
    return result.isOk() ? result.takeValue() : std::vector<Token>{};
}

TEST(LexerTest, EmptyInputYieldsEof)
{
    auto tokens = lex("");
    ASSERT_EQ(tokens.size(), 1u);
    EXPECT_EQ(tokens[0].kind, TokenKind::EndOfInput);
}

TEST(LexerTest, IdentifiersAndIntegers)
{
    auto tokens = lex("SELECT c0 FROM t0 LIMIT 42");
    ASSERT_EQ(tokens.size(), 7u);
    EXPECT_EQ(tokens[0].text, "SELECT");
    EXPECT_EQ(tokens[1].text, "c0");
    EXPECT_EQ(tokens[5].kind, TokenKind::Integer);
    EXPECT_EQ(tokens[5].intValue, 42);
}

TEST(LexerTest, StringWithEscapedQuote)
{
    auto tokens = lex("'it''s'");
    ASSERT_GE(tokens.size(), 1u);
    EXPECT_EQ(tokens[0].kind, TokenKind::String);
    EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, EmptyString)
{
    auto tokens = lex("''");
    EXPECT_EQ(tokens[0].kind, TokenKind::String);
    EXPECT_EQ(tokens[0].text, "");
}

TEST(LexerTest, UnterminatedStringFails)
{
    auto result = tokenize("'abc");
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::SyntaxError);
}

TEST(LexerTest, MultiCharSymbolsMaximalMunch)
{
    auto tokens = lex("a <=> b <> c != d <= e >= f << g >> h || i");
    std::vector<std::string> symbols;
    for (const Token &t : tokens) {
        if (t.kind == TokenKind::Symbol)
            symbols.push_back(t.text);
    }
    std::vector<std::string> expected{"<=>", "<>", "!=", "<=",
                                      ">=", "<<", ">>", "||"};
    EXPECT_EQ(symbols, expected);
}

TEST(LexerTest, SingleCharSymbols)
{
    auto tokens = lex("(a+b)*c-d/e%f=g<h>i,~j;");
    int symbol_count = 0;
    for (const Token &t : tokens) {
        if (t.kind == TokenKind::Symbol)
            ++symbol_count;
    }
    // ( + ) * - / % = < > , ~ ; — 13 symbols.
    EXPECT_EQ(symbol_count, 13);
}

TEST(LexerTest, LineCommentSkipped)
{
    auto tokens = lex("SELECT 1 -- comment here\n, 2");
    // SELECT 1 , 2 EOF
    ASSERT_EQ(tokens.size(), 5u);
    EXPECT_EQ(tokens[3].intValue, 2);
}

TEST(LexerTest, BlockCommentSkipped)
{
    auto tokens = lex("SELECT /* hidden */ 1");
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[1].intValue, 1);
}

TEST(LexerTest, UnterminatedBlockCommentFails)
{
    EXPECT_FALSE(tokenize("SELECT /* oops").isOk());
}

TEST(LexerTest, UnexpectedCharacterFails)
{
    auto result = tokenize("SELECT @");
    ASSERT_FALSE(result.isOk());
    EXPECT_NE(result.status().message().find("unexpected character"),
              std::string::npos);
}

TEST(LexerTest, IntegerOverflowDefersToParser)
{
    // The lexer keeps an over-range magnitude as a flagged token
    // instead of failing: "9223372036854775808" is only meaningful
    // once the parser sees whether a unary minus precedes it (the
    // printed form of the INT64_MIN literal must round-trip). The
    // parser rejects the flagged token everywhere else.
    auto result = tokenize("99999999999999999999999999");
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    ASSERT_EQ(result.value().size(), 2u); // integer + EOF
    EXPECT_TRUE(result.value()[0].outOfRange);
    EXPECT_FALSE(parseExpression("99999999999999999999999999").isOk());
    EXPECT_FALSE(parseExpression("-99999999999999999999999999").isOk());
    EXPECT_TRUE(parseExpression("-9223372036854775808").isOk());
}

TEST(LexerTest, OffsetsRecorded)
{
    auto tokens = lex("ab cd");
    EXPECT_EQ(tokens[0].offset, 0u);
    EXPECT_EQ(tokens[1].offset, 3u);
}

TEST(LexerTest, UnderscoreIdentifiers)
{
    auto tokens = lex("_private my_col2");
    EXPECT_EQ(tokens[0].text, "_private");
    EXPECT_EQ(tokens[1].text, "my_col2");
}

} // namespace
} // namespace sqlpp
