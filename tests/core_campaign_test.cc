/**
 * @file
 * End-to-end campaign tests: bug finding on faulty dialects, silence on
 * the clean one, prioritization, ground-truth attribution, and the
 * feedback ablation.
 */
#include <gtest/gtest.h>

#include "core/campaign.h"

namespace sqlpp {
namespace {

CampaignConfig
smallConfig(const std::string &dialect, uint64_t seed = 7)
{
    CampaignConfig config;
    config.dialect = dialect;
    config.seed = seed;
    config.setupStatements = 60;
    config.checks = 400;
    config.feedback.updateInterval = 150;
    config.feedback.ddlFailureLimit = 6;
    config.generator.depthStep = 100;
    return config;
}

TEST(CampaignTest, FindsBugsOnCrateDbLike)
{
    CampaignRunner runner(smallConfig("cratedb-like"));
    CampaignStats stats = runner.run();
    EXPECT_GT(stats.checksAttempted, 100u);
    EXPECT_GT(stats.bugsDetected, 0u);
    EXPECT_GT(stats.prioritizedBugs.size(), 0u);
    // Prioritization must collapse the detected volume dramatically.
    EXPECT_LT(stats.prioritizedBugs.size(), stats.bugsDetected);
}

TEST(CampaignTest, CleanDialectYieldsNoBugs)
{
    CampaignRunner runner(smallConfig("postgres-like"));
    CampaignStats stats = runner.run();
    EXPECT_EQ(stats.bugsDetected, 0u);
    EXPECT_TRUE(stats.prioritizedBugs.empty());
    EXPECT_GT(stats.checksValid, 0u);
}

TEST(CampaignTest, PrioritizedBugsReproduce)
{
    CampaignConfig config = smallConfig("sqlite-like");
    config.checks = 600;
    CampaignRunner runner(config);
    CampaignStats stats = runner.run();
    const DialectProfile *profile = findDialect("sqlite-like");
    size_t reproduced = 0;
    for (const BugCase &bug : stats.prioritizedBugs) {
        if (CampaignRunner::reproduces(*profile, bug))
            ++reproduced;
    }
    // Most prioritized cases replay (all setup statements recorded).
    EXPECT_GT(stats.prioritizedBugs.size(), 0u);
    EXPECT_GE(reproduced, stats.prioritizedBugs.size() / 2);
}

TEST(CampaignTest, AttributionFindsTheCausalFault)
{
    // Hand-built Listing 4 case on sqlite-like: attribution must point
    // at ON_TO_WHERE_RIGHT_JOIN and not at the other enabled faults.
    const DialectProfile *sqlite = findDialect("sqlite-like");
    BugCase bug;
    bug.dialect = sqlite->name;
    bug.oracle = "NOREC";
    bug.setup = {"CREATE TABLE t0 (c0 INT)", "CREATE TABLE t1 (c0 INT)",
                 "INSERT INTO t0 VALUES (1)",
                 "INSERT INTO t1 VALUES (1), (9)"};
    bug.baseText = "SELECT * FROM t0 RIGHT JOIN t1 ON (t0.c0 = t1.c0)";
    bug.predicateText = "TRUE";
    auto fault = CampaignRunner::attributeFault(*sqlite, bug);
    ASSERT_TRUE(fault.has_value());
    EXPECT_EQ(*fault, FaultId::OnToWhereRightJoin);
}

TEST(CampaignTest, AttributionReturnsNulloptForNonBug)
{
    const DialectProfile *pg = findDialect("postgres-like");
    BugCase bug;
    bug.dialect = pg->name;
    bug.oracle = "TLP";
    bug.setup = {"CREATE TABLE t0 (c0 INT)",
                 "INSERT INTO t0 VALUES (1)"};
    bug.baseText = "SELECT * FROM t0";
    bug.predicateText = "(t0.c0 > 0)";
    EXPECT_FALSE(
        CampaignRunner::attributeFault(*pg, bug).has_value());
}

TEST(CampaignTest, UniqueBugCountBoundedByFaultCount)
{
    CampaignConfig config = smallConfig("cratedb-like");
    config.checks = 500;
    CampaignRunner runner(config);
    CampaignStats stats = runner.run();
    const DialectProfile *profile = findDialect("cratedb-like");
    size_t unique = CampaignRunner::countUniqueBugs(
        *profile, stats.prioritizedBugs);
    EXPECT_GT(unique, 0u);
    EXPECT_LE(unique, profile->faults.size() + 1);
    EXPECT_LE(unique, stats.prioritizedBugs.size());
}

TEST(CampaignTest, FeedbackImprovesValidity)
{
    // Feature exposure in oracle shapes is ~3-5% per unsupported
    // feature, so verdicts need a few thousand checks to accumulate
    // (the paper runs 100K-statement windows).
    CampaignConfig with = smallConfig("postgres-like", 11);
    with.checks = 3000;
    CampaignConfig without = with;
    without.mode = GeneratorMode::AdaptiveNoFeedback;
    double v_with = CampaignRunner(with).run().validityRate();
    double v_without = CampaignRunner(without).run().validityRate();
    EXPECT_GT(v_with, v_without)
        << "with=" << v_with << " without=" << v_without;
}

TEST(CampaignTest, BaselineModeRunsCleanly)
{
    CampaignConfig config = smallConfig("mysql-like");
    config.mode = GeneratorMode::Baseline;
    CampaignRunner runner(config);
    CampaignStats stats = runner.run();
    // Omniscient gating: very high validity without any learning.
    EXPECT_GT(stats.validityRate(), 0.55);
}

TEST(CampaignTest, PlanFingerprintsAccumulate)
{
    CampaignRunner runner(smallConfig("sqlite-like"));
    CampaignStats stats = runner.run();
    EXPECT_GT(stats.planFingerprints.size(), 10u);
}

TEST(CampaignTest, BothOraclesCanRunTogether)
{
    CampaignConfig config = smallConfig("umbra-like");
    config.oracles = {"TLP", "NOREC"};
    CampaignRunner runner(config);
    CampaignStats stats = runner.run();
    EXPECT_GT(stats.bugsDetected, 0u);
    bool saw_tlp = false, saw_norec = false;
    for (const BugCase &bug : stats.prioritizedBugs) {
        saw_tlp |= bug.oracle == "TLP";
        saw_norec |= bug.oracle == "NOREC";
    }
    EXPECT_TRUE(saw_tlp || saw_norec);
}

TEST(CampaignTest, DeterministicUnderSeed)
{
    CampaignStats a = CampaignRunner(smallConfig("dolt-like", 3)).run();
    CampaignStats b = CampaignRunner(smallConfig("dolt-like", 3)).run();
    EXPECT_EQ(a.bugsDetected, b.bugsDetected);
    EXPECT_EQ(a.prioritizedBugs.size(), b.prioritizedBugs.size());
    EXPECT_EQ(a.checksValid, b.checksValid);
}

TEST(CampaignTest, RebuildEveryRebuildsState)
{
    CampaignConfig config = smallConfig("sqlite-like");
    config.checks = 200;
    config.rebuildEvery = 50;
    CampaignRunner runner(config);
    CampaignStats stats = runner.run();
    // Four builds' worth of setup statements.
    EXPECT_GE(stats.setupGenerated, 4 * config.setupStatements);
}

TEST(CampaignTest, UnknownDialectFallsBack)
{
    CampaignConfig config = smallConfig("no-such-dbms");
    CampaignRunner runner(config);
    CampaignStats stats = runner.run(); // must not crash
    EXPECT_GT(stats.setupGenerated, 0u);
}

} // namespace
} // namespace sqlpp
