/**
 * @file
 * Tests for the 58 built-in scalar functions and the aggregate set.
 */
#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/functions.h"

namespace sqlpp {
namespace {

Value
evalSql(const std::string &expr, EngineConfig config = {})
{
    Database db(config);
    auto result = db.execute("SELECT " + expr);
    EXPECT_TRUE(result.isOk())
        << expr << " -> " << result.status().toString();
    if (!result.isOk())
        return Value::null();
    return result.value().rows()[0][0];
}

Status
evalError(const std::string &expr, EngineConfig config = {})
{
    Database db(config);
    auto result = db.execute("SELECT " + expr);
    EXPECT_FALSE(result.isOk()) << expr;
    return result.isOk() ? Status::ok() : result.status();
}

TEST(FunctionsTest, RegistryHas58Functions)
{
    // Table 1 of the paper: 58 functions.
    EXPECT_EQ(FunctionRegistry::instance().size(), 58u);
}

TEST(FunctionsTest, MathBasics)
{
    EXPECT_EQ(evalSql("ABS(-5)").asInt(), 5);
    EXPECT_EQ(evalSql("ABS(5)").asInt(), 5);
    EXPECT_EQ(evalSql("SIGN(-9)").asInt(), -1);
    EXPECT_EQ(evalSql("SIGN(0)").asInt(), 0);
    EXPECT_EQ(evalSql("MOD(7, 3)").asInt(), 1);
    EXPECT_EQ(evalSql("POWER(2, 10)").asInt(), 1024);
    EXPECT_EQ(evalSql("POWER(3, 0)").asInt(), 1);
    EXPECT_EQ(evalSql("POWER(-1, 5)").asInt(), -1);
    EXPECT_EQ(evalSql("SQRT(16)").asInt(), 4);
    EXPECT_EQ(evalSql("SQRT(17)").asInt(), 4);
    EXPECT_EQ(evalSql("FLOOR(3)").asInt(), 3);
    EXPECT_EQ(evalSql("CEIL(3)").asInt(), 3);
    EXPECT_EQ(evalSql("ROUND(3)").asInt(), 3);
}

TEST(FunctionsTest, MathOverflowAndNull)
{
    EXPECT_EQ(evalError("POWER(10, 100)").code(),
              ErrorCode::RuntimeError);
    EXPECT_TRUE(evalSql("ABS(NULL)").isNull());
    EXPECT_TRUE(evalSql("MOD(1, NULL)").isNull());
    EXPECT_TRUE(evalSql("MOD(5, 0)").isNull()); // div-zero-as-null default
}

TEST(FunctionsTest, FixedPointTranscendentals)
{
    // SIN(x) == round(sin(x) * 1000).
    EXPECT_EQ(evalSql("SIN(0)").asInt(), 0);
    EXPECT_EQ(evalSql("SIN(1)").asInt(), 841);
    EXPECT_EQ(evalSql("COS(0)").asInt(), 1000);
    EXPECT_EQ(evalSql("TAN(1)").asInt(), 1557);
    EXPECT_EQ(evalSql("ATAN(1)").asInt(), 785);
    EXPECT_EQ(evalSql("EXP(1)").asInt(), 2718);
    EXPECT_EQ(evalSql("LN(1)").asInt(), 0);
    EXPECT_EQ(evalSql("LOG10(100)").asInt(), 2000);
    EXPECT_EQ(evalSql("LOG2(8)").asInt(), 3000);
    EXPECT_EQ(evalSql("PI()").asInt(), 3142);
    EXPECT_EQ(evalSql("ATAN2(1, 1)").asInt(), 785);
    EXPECT_EQ(evalSql("DEGREES(3)").asInt(), 172);
}

TEST(FunctionsTest, DomainErrorsFollowBehaviorKnob)
{
    // Paper Section 4: "ASIN(1) can succeed while ASIN(2) throws".
    EXPECT_EQ(evalSql("ASIN(1)").asInt(), 1571);
    EXPECT_EQ(evalError("ASIN(2)").code(), ErrorCode::RuntimeError);
    EXPECT_EQ(evalError("LN(0)").code(), ErrorCode::RuntimeError);
    EXPECT_EQ(evalError("SQRT(-1)").code(), ErrorCode::RuntimeError);
    EXPECT_EQ(evalError("EXP(100)").code(), ErrorCode::RuntimeError);

    EngineConfig lax;
    lax.behavior.domainErrorIsNull = true;
    EXPECT_TRUE(evalSql("ASIN(2)", lax).isNull());
    EXPECT_TRUE(evalSql("SQRT(-1)", lax).isNull());
}

TEST(FunctionsTest, StringBasics)
{
    EXPECT_EQ(evalSql("LENGTH('hello')").asInt(), 5);
    EXPECT_EQ(evalSql("LENGTH('')").asInt(), 0);
    EXPECT_EQ(evalSql("LOWER('AbC')").asText(), "abc");
    EXPECT_EQ(evalSql("UPPER('AbC')").asText(), "ABC");
    EXPECT_EQ(evalSql("TRIM('  x  ')").asText(), "x");
    EXPECT_EQ(evalSql("LTRIM('  x  ')").asText(), "x  ");
    EXPECT_EQ(evalSql("RTRIM('  x  ')").asText(), "  x");
    EXPECT_EQ(evalSql("REVERSE('abc')").asText(), "cba");
    EXPECT_EQ(evalSql("REPEAT('ab', 3)").asText(), "ababab");
    EXPECT_EQ(evalSql("LEFT('hello', 2)").asText(), "he");
    EXPECT_EQ(evalSql("RIGHT('hello', 2)").asText(), "lo");
    EXPECT_EQ(evalSql("ASCII('A')").asInt(), 65);
    EXPECT_EQ(evalSql("CHR(65)").asText(), "A");
    EXPECT_EQ(evalSql("HEX('AB')").asText(), "4142");
    EXPECT_EQ(evalSql("SPACE(3)").asText(), "   ");
    EXPECT_EQ(evalSql("LPAD('x', 3)").asText(), "  x");
    EXPECT_EQ(evalSql("RPAD('x', 3, '.')").asText(), "x..");
    EXPECT_TRUE(evalSql("STARTS_WITH('hello', 'he')").asBool());
    EXPECT_FALSE(evalSql("STARTS_WITH('hello', 'lo')").asBool());
}

TEST(FunctionsTest, ReplaceSemantics)
{
    EXPECT_EQ(evalSql("REPLACE('banana', 'an', 'x')").asText(), "bxxa");
    // Paper Listing 3: REPLACE with an empty needle returns the subject
    // unchanged — and the result must be TEXT even for numeric input.
    Value replaced = evalSql("REPLACE(1, '', 0)");
    EXPECT_EQ(replaced.kind(), Value::Kind::Text);
    EXPECT_EQ(replaced.asText(), "1");
    EXPECT_EQ(evalSql("TYPEOF(REPLACE(1, '', 0))").asText(), "text");
}

TEST(FunctionsTest, SubstrAndInstr)
{
    EXPECT_EQ(evalSql("SUBSTR('hello', 2)").asText(), "ello");
    EXPECT_EQ(evalSql("SUBSTR('hello', 2, 3)").asText(), "ell");
    EXPECT_EQ(evalSql("SUBSTR('hello', -2)").asText(), "lo");
    EXPECT_EQ(evalSql("SUBSTR('hello', 99)").asText(), "");
    EXPECT_EQ(evalSql("INSTR('hello', 'll')").asInt(), 3);
    EXPECT_EQ(evalSql("INSTR('hello', 'z')").asInt(), 0);
}

TEST(FunctionsTest, ConcatVariants)
{
    EXPECT_EQ(evalSql("CONCAT('a', 'b', 'c')").asText(), "abc");
    EXPECT_TRUE(evalSql("CONCAT('a', NULL)").isNull());
    EXPECT_EQ(evalSql("CONCAT_WS('-', 'a', NULL, 'b')").asText(), "a-b");
    EXPECT_TRUE(evalSql("CONCAT_WS(NULL, 'a')").isNull());
}

TEST(FunctionsTest, StringGuards)
{
    EXPECT_EQ(evalError("REPEAT('aaaa', 100000)").code(),
              ErrorCode::RuntimeError);
    EXPECT_EQ(evalError("SPACE(9999999)").code(),
              ErrorCode::RuntimeError);
    EXPECT_EQ(evalError("CHR(0)").code(), ErrorCode::RuntimeError);
    EXPECT_TRUE(evalSql("ASCII('')").isNull());
}

TEST(FunctionsTest, NullConditionals)
{
    EXPECT_TRUE(evalSql("NULLIF(2, 2)").isNull());
    EXPECT_EQ(evalSql("NULLIF(2, 3)").asInt(), 2);
    EXPECT_EQ(evalSql("NULLIF(2, NULL)").asInt(), 2);
    EXPECT_EQ(evalSql("COALESCE(NULL, NULL, 7)").asInt(), 7);
    EXPECT_TRUE(evalSql("COALESCE(NULL, NULL)").isNull());
    EXPECT_EQ(evalSql("IFNULL(NULL, 5)").asInt(), 5);
    EXPECT_EQ(evalSql("IFNULL(4, 5)").asInt(), 4);
    EXPECT_EQ(evalSql("NVL(NULL, 'x')").asText(), "x");
    EXPECT_EQ(evalSql("IIF(1 < 2, 'yes', 'no')").asText(), "yes");
    EXPECT_EQ(evalSql("IIF(NULL, 'yes', 'no')").asText(), "no");
    EXPECT_EQ(evalSql("GREATEST(3, 9, 1)").asInt(), 9);
    EXPECT_EQ(evalSql("LEAST(3, 9, 1)").asInt(), 1);
    EXPECT_TRUE(evalSql("GREATEST(3, NULL)").isNull());
    EXPECT_EQ(evalSql("QUOTE('it''s')").asText(), "'it''s'");
    EXPECT_EQ(evalSql("QUOTE(NULL)").asText(), "NULL");
}

TEST(FunctionsTest, Typeof)
{
    EXPECT_EQ(evalSql("TYPEOF(NULL)").asText(), "null");
    EXPECT_EQ(evalSql("TYPEOF(1)").asText(), "integer");
    EXPECT_EQ(evalSql("TYPEOF('x')").asText(), "text");
    EXPECT_EQ(evalSql("TYPEOF(TRUE)").asText(), "boolean");
}

class AggregateTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ASSERT_TRUE(db.execute("CREATE TABLE t0 (c0 INT)").isOk());
        ASSERT_TRUE(db.execute("INSERT INTO t0 VALUES (1), (2), (2), "
                               "(NULL), (5)")
                        .isOk());
    }

    Value
    agg(const std::string &expr)
    {
        auto result = db.execute("SELECT " + expr + " FROM t0");
        EXPECT_TRUE(result.isOk())
            << expr << " -> " << result.status().toString();
        return result.isOk() ? result.value().rows()[0][0] : Value::null();
    }

    Database db;
};

TEST_F(AggregateTest, CountForms)
{
    EXPECT_EQ(agg("COUNT(*)").asInt(), 5);
    EXPECT_EQ(agg("COUNT(c0)").asInt(), 4); // NULL not counted
    EXPECT_EQ(agg("COUNT(DISTINCT c0)").asInt(), 3);
}

TEST_F(AggregateTest, SumAvgMinMax)
{
    EXPECT_EQ(agg("SUM(c0)").asInt(), 10);
    EXPECT_EQ(agg("SUM(DISTINCT c0)").asInt(), 8);
    EXPECT_EQ(agg("AVG(c0)").asInt(), 2); // integer division
    EXPECT_EQ(agg("MIN(c0)").asInt(), 1);
    EXPECT_EQ(agg("MAX(c0)").asInt(), 5);
}

TEST_F(AggregateTest, EmptySetSemantics)
{
    ASSERT_TRUE(db.execute("CREATE TABLE empty (c0 INT)").isOk());
    auto result = db.execute("SELECT SUM(c0), COUNT(*), MIN(c0) "
                             "FROM empty");
    ASSERT_TRUE(result.isOk());
    ASSERT_EQ(result.value().rowCount(), 1u);
    EXPECT_TRUE(result.value().rows()[0][0].isNull());
    EXPECT_EQ(result.value().rows()[0][1].asInt(), 0);
    EXPECT_TRUE(result.value().rows()[0][2].isNull());
}

} // namespace
} // namespace sqlpp
