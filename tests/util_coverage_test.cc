/**
 * @file
 * Unit tests for the coverage-probe registry.
 */
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/coverage.h"

namespace sqlpp {
namespace {

TEST(CoverageTest, DeclareFixesDenominator)
{
    CoverageRegistry reg;
    reg.declare("a");
    reg.declare("b");
    EXPECT_EQ(reg.declared(), 2u);
    EXPECT_EQ(reg.covered(), 0u);
    EXPECT_DOUBLE_EQ(reg.ratio(), 0.0);
}

TEST(CoverageTest, HitCoversAndCounts)
{
    CoverageRegistry reg;
    reg.declare("a");
    reg.declare("b");
    reg.hit("a");
    reg.hit("a");
    EXPECT_EQ(reg.covered(), 1u);
    EXPECT_EQ(reg.hits("a"), 2u);
    EXPECT_EQ(reg.hits("b"), 0u);
    EXPECT_DOUBLE_EQ(reg.ratio(), 0.5);
}

TEST(CoverageTest, HitDeclaresUnknownProbe)
{
    CoverageRegistry reg;
    reg.hit("new_probe");
    EXPECT_EQ(reg.declared(), 1u);
    EXPECT_EQ(reg.covered(), 1u);
}

TEST(CoverageTest, ResetClearsHitsKeepsDeclarations)
{
    CoverageRegistry reg;
    reg.declare("a");
    reg.hit("a");
    reg.reset();
    EXPECT_EQ(reg.declared(), 1u);
    EXPECT_EQ(reg.covered(), 0u);
    EXPECT_EQ(reg.hits("a"), 0u);
}

TEST(CoverageTest, UncoveredLists)
{
    CoverageRegistry reg;
    reg.declare("a");
    reg.declare("b");
    reg.hit("b");
    auto uncovered = reg.uncovered();
    ASSERT_EQ(uncovered.size(), 1u);
    EXPECT_EQ(uncovered[0], "a");
}

TEST(CoverageTest, EmptyRegistryRatioZero)
{
    CoverageRegistry reg;
    EXPECT_DOUBLE_EQ(reg.ratio(), 0.0);
}

TEST(CoverageTest, ConcurrentHitsLoseNothing)
{
    CoverageRegistry reg;
    const size_t hot = reg.slot("hot");
    constexpr size_t kThreads = 4;
    constexpr size_t kHitsPerThread = 20000;
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg, hot, t] {
            for (size_t i = 0; i < kHitsPerThread; ++i)
                reg.hitSlot(hot);
            // Late registration must not disturb live counters.
            reg.declare("late_" + std::to_string(t));
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(reg.hits("hot"), kThreads * kHitsPerThread);
    EXPECT_EQ(reg.declared(), 1u + kThreads);
}

TEST(CoverageTest, GlobalInstanceIsSingleton)
{
    EXPECT_EQ(&CoverageRegistry::instance(), &CoverageRegistry::instance());
}

TEST(CoverageCaptureTest, CountsFirstHitsOnlyAndDrains)
{
    CoverageRegistry &reg = CoverageRegistry::instance();
    const size_t a = reg.slot("capture_test_a");
    const size_t b = reg.slot("capture_test_b");

    CoverageCapture capture;
    reg.hitSlot(a);
    reg.hitSlot(a); // repeat hit: not novel
    EXPECT_EQ(capture.takeNewProbes(), 1u);
    EXPECT_EQ(capture.takeNewProbes(), 0u); // drained

    reg.hitSlot(a); // seen over the capture's lifetime: still not novel
    reg.hitSlot(b);
    EXPECT_EQ(capture.takeNewProbes(), 1u);
    EXPECT_EQ(capture.probesSeen(), 2u);
}

TEST(CoverageCaptureTest, CaptureIsThreadLocal)
{
    CoverageRegistry &reg = CoverageRegistry::instance();
    const size_t slot = reg.slot("capture_test_threaded");

    CoverageCapture capture;
    // Hits from another thread (no capture installed there) must not
    // bleed into this thread's capture — that is the whole point: a
    // shard's novelty signal sees only its own worker thread.
    std::thread other([&reg, slot] { reg.hitSlot(slot); });
    other.join();
    EXPECT_EQ(capture.takeNewProbes(), 0u);

    reg.hitSlot(slot);
    EXPECT_EQ(capture.takeNewProbes(), 1u);
}

TEST(CoverageCaptureTest, CapturesStackAndRestore)
{
    CoverageRegistry &reg = CoverageRegistry::instance();
    const size_t slot = reg.slot("capture_test_stacked");

    CoverageCapture outer;
    {
        CoverageCapture inner;
        reg.hitSlot(slot);
        EXPECT_EQ(inner.takeNewProbes(), 1u);
        // While inner is installed, hits bypass outer entirely.
        EXPECT_EQ(outer.takeNewProbes(), 0u);
    }
    reg.hitSlot(slot); // inner destroyed: outer is active again
    EXPECT_EQ(outer.takeNewProbes(), 1u);
}

} // namespace
} // namespace sqlpp
