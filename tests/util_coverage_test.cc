/**
 * @file
 * Unit tests for the coverage-probe registry.
 */
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/coverage.h"

namespace sqlpp {
namespace {

TEST(CoverageTest, DeclareFixesDenominator)
{
    CoverageRegistry reg;
    reg.declare("a");
    reg.declare("b");
    EXPECT_EQ(reg.declared(), 2u);
    EXPECT_EQ(reg.covered(), 0u);
    EXPECT_DOUBLE_EQ(reg.ratio(), 0.0);
}

TEST(CoverageTest, HitCoversAndCounts)
{
    CoverageRegistry reg;
    reg.declare("a");
    reg.declare("b");
    reg.hit("a");
    reg.hit("a");
    EXPECT_EQ(reg.covered(), 1u);
    EXPECT_EQ(reg.hits("a"), 2u);
    EXPECT_EQ(reg.hits("b"), 0u);
    EXPECT_DOUBLE_EQ(reg.ratio(), 0.5);
}

TEST(CoverageTest, HitDeclaresUnknownProbe)
{
    CoverageRegistry reg;
    reg.hit("new_probe");
    EXPECT_EQ(reg.declared(), 1u);
    EXPECT_EQ(reg.covered(), 1u);
}

TEST(CoverageTest, ResetClearsHitsKeepsDeclarations)
{
    CoverageRegistry reg;
    reg.declare("a");
    reg.hit("a");
    reg.reset();
    EXPECT_EQ(reg.declared(), 1u);
    EXPECT_EQ(reg.covered(), 0u);
    EXPECT_EQ(reg.hits("a"), 0u);
}

TEST(CoverageTest, UncoveredLists)
{
    CoverageRegistry reg;
    reg.declare("a");
    reg.declare("b");
    reg.hit("b");
    auto uncovered = reg.uncovered();
    ASSERT_EQ(uncovered.size(), 1u);
    EXPECT_EQ(uncovered[0], "a");
}

TEST(CoverageTest, EmptyRegistryRatioZero)
{
    CoverageRegistry reg;
    EXPECT_DOUBLE_EQ(reg.ratio(), 0.0);
}

TEST(CoverageTest, ConcurrentHitsLoseNothing)
{
    CoverageRegistry reg;
    const size_t hot = reg.slot("hot");
    constexpr size_t kThreads = 4;
    constexpr size_t kHitsPerThread = 20000;
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg, hot, t] {
            for (size_t i = 0; i < kHitsPerThread; ++i)
                reg.hitSlot(hot);
            // Late registration must not disturb live counters.
            reg.declare("late_" + std::to_string(t));
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(reg.hits("hot"), kThreads * kHitsPerThread);
    EXPECT_EQ(reg.declared(), 1u + kThreads);
}

TEST(CoverageTest, GlobalInstanceIsSingleton)
{
    EXPECT_EQ(&CoverageRegistry::instance(), &CoverageRegistry::instance());
}

} // namespace
} // namespace sqlpp
