/**
 * @file
 * Cross-mode campaign determinism: a fixed-seed single-worker campaign
 * must be observationally identical under ExecMode::Optimized and
 * ExecMode::Batch — same merged CampaignStats, same bug set, and
 * byte-identical sqlpp.metrics.v1 / sqlpp.trace.v1 documents once the
 * documented mode-describing exceptions are stripped:
 *
 *  - metrics: the campaign.exec.* family (the mode gauge and the batch
 *    instrumentation counters) is the one sanctioned cross-mode
 *    difference;
 *  - trace: the exec_mode_selected event (emitted only for non-default
 *    modes, so legacy traces never change) and the header line whose
 *    event count it shifts.
 *
 * Everything else — statement counts, oracle verdicts, plan discovery,
 * error classes, curve samples — must not move by a byte, because the
 * batch pipeline shares the optimizer and the evaluation semantics
 * with the row pipeline.
 */
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dossier.h"
#include "core/scheduler.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace sqlpp {
namespace {

SchedulerConfig
modeCampaign(ExecMode exec_mode)
{
    SchedulerConfig config;
    config.mode = ScheduleMode::SliceChecks;
    config.workers = 1;
    config.slices = 3;
    config.campaign.dialect = "sqlite-like";
    config.campaign.seed = 97;
    config.campaign.checks = 120;
    config.campaign.setupStatements = 30;
    config.campaign.oracles = {"TLP", "NOREC"};
    config.campaign.feedback.updateInterval = 50;
    config.campaign.execMode = exec_mode;
    return config;
}

/** Drop every line containing any of the given markers. */
std::string
stripLines(const std::string &text,
           const std::vector<std::string> &markers)
{
    std::istringstream in(text);
    std::string out;
    std::string line;
    while (std::getline(in, line)) {
        bool drop = false;
        for (const std::string &marker : markers)
            drop = drop || line.find(marker) != std::string::npos;
        if (!drop) {
            out += line;
            out += "\n";
        }
    }
    return out;
}

struct ModeRun
{
    ScheduleReport report;
    std::string metrics_json;
    std::string trace_jsonl;
};

ModeRun
runMode(ExecMode exec_mode)
{
    declarePlatformMetrics();
    MetricsRegistry::instance().reset();
    TraceRecorder::instance().reset();
    ModeRun run;
    run.report = CampaignScheduler(modeCampaign(exec_mode)).run();
    run.metrics_json = exportMetricsJson();
    run.trace_jsonl = exportTraceJsonl();
    return run;
}

TEST(CoreBatchDeterminismTest, CampaignIsModeInvariantForFixedSeed)
{
    ModeRun optimized = runMode(ExecMode::Optimized);
    ModeRun batch = runMode(ExecMode::Batch);

    // Each BugCase records the pipeline that found it, so that field
    // — and only that field — legitimately differs across modes.
    // Everything else in the merged stats must match exactly, and the
    // bugs must be the same cases found in the same order.
    ASSERT_FALSE(optimized.report.merged.prioritizedBugs.empty());
    ASSERT_EQ(optimized.report.merged.prioritizedBugs.size(),
              batch.report.merged.prioritizedBugs.size());
    for (size_t i = 0;
         i < optimized.report.merged.prioritizedBugs.size(); ++i) {
        const BugCase &row_bug =
            optimized.report.merged.prioritizedBugs[i];
        const BugCase &batch_bug =
            batch.report.merged.prioritizedBugs[i];
        EXPECT_EQ(row_bug.execMode, "optimized");
        EXPECT_EQ(batch_bug.execMode, "batch");
        // Same case identity: execMode is excluded from the id.
        EXPECT_EQ(bugCaseId(row_bug), bugCaseId(batch_bug)) << i;
    }
    CampaignStats normalized = batch.report.merged;
    for (BugCase &bug : normalized.prioritizedBugs)
        bug.execMode = "optimized";
    EXPECT_TRUE(optimized.report.merged == normalized);

    // Metrics: byte-identical outside the campaign.exec.* family.
    EXPECT_EQ(stripLines(optimized.metrics_json, {"campaign.exec."}),
              stripLines(batch.metrics_json, {"campaign.exec."}));

#ifndef SQLPP_NO_TRACE
    // Trace: byte-identical outside the mode-announcement event and
    // the header its count shifts. Every tick, oracle check, and plan
    // discovery lands on the same line in the same order.
    std::vector<std::string> markers = {"exec_mode_selected",
                                        "\"schema\": \"sqlpp.trace"};
    EXPECT_EQ(stripLines(optimized.trace_jsonl, markers),
              stripLines(batch.trace_jsonl, markers));
    // The batch run did announce its mode; the optimized run did not
    // (legacy traces must stay byte-identical).
    EXPECT_EQ(optimized.trace_jsonl.find("exec_mode_selected"),
              std::string::npos);
    EXPECT_NE(batch.trace_jsonl.find("exec_mode_selected"),
              std::string::npos);
#endif
}

TEST(CoreBatchDeterminismTest, BatchCampaignIsSelfDeterministic)
{
    // The determinism bar the row pipeline clears — two identical
    // fixed-seed runs, byte-identical exports — holds for batch too.
    ModeRun first = runMode(ExecMode::Batch);
    ModeRun second = runMode(ExecMode::Batch);
    EXPECT_TRUE(first.report.merged == second.report.merged);
    EXPECT_EQ(first.metrics_json, second.metrics_json);
    EXPECT_EQ(first.trace_jsonl, second.trace_jsonl);
}

} // namespace
} // namespace sqlpp
