/**
 * @file
 * Unit tests for the PCG32-based Rng: determinism, range contracts,
 * distribution sanity, and weighted selection.
 */
#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace sqlpp {
namespace {

TEST(RngTest, SameSeedSameStream)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next64() == b.next64())
            ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(RngTest, ReseedRestartsStream)
{
    Rng rng(7);
    uint64_t first = rng.next64();
    rng.next64();
    rng.reseed(7);
    EXPECT_EQ(first, rng.next64());
}

TEST(RngTest, BelowStaysInBounds)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(RngTest, BelowOneAlwaysZero)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, RangeInclusiveBounds)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ChanceExtremes)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(RngTest, ChanceApproximatesProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(RngTest, PickWeightedSkipsZeroWeights)
{
    Rng rng(17);
    std::vector<double> weights{0.0, 1.0, 0.0, 1.0};
    for (int i = 0; i < 1000; ++i) {
        size_t idx = rng.pickWeighted(weights);
        EXPECT_TRUE(idx == 1 || idx == 3);
    }
}

TEST(RngTest, PickWeightedProportions)
{
    Rng rng(19);
    std::vector<double> weights{1.0, 3.0};
    int second = 0;
    for (int i = 0; i < 20000; ++i)
        second += rng.pickWeighted(weights) == 1 ? 1 : 0;
    EXPECT_NEAR(second / 20000.0, 0.75, 0.02);
}

TEST(RngTest, PickWeightedAllZeroFallsBackUniform)
{
    Rng rng(23);
    std::vector<double> weights{0.0, 0.0, 0.0};
    std::set<size_t> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(rng.pickWeighted(weights));
    EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, IdentifierShapeAndDeterminism)
{
    Rng a(29), b(29);
    std::string ident = a.identifier(8);
    EXPECT_EQ(ident.size(), 8u);
    for (char c : ident)
        EXPECT_TRUE(c >= 'a' && c <= 'z');
    EXPECT_EQ(ident, b.identifier(8));
}

TEST(RngTest, TextRespectsMaxLength)
{
    Rng rng(31);
    for (int i = 0; i < 500; ++i)
        EXPECT_LE(rng.text(10).size(), 10u);
}

TEST(RngTest, PickReturnsElementOfVector)
{
    Rng rng(37);
    std::vector<int> items{5, 6, 7};
    for (int i = 0; i < 100; ++i) {
        int v = rng.pick(items);
        EXPECT_TRUE(v >= 5 && v <= 7);
    }
}

} // namespace
} // namespace sqlpp
