/**
 * @file
 * Feature registry tests, including the Table 1 taxonomy counts.
 */
#include <gtest/gtest.h>

#include "core/feature.h"

namespace sqlpp {
namespace {

TEST(FeatureRegistryTest, InternIsIdempotent)
{
    FeatureRegistry registry;
    FeatureId a = registry.intern("X_TEST", FeatureKind::Property);
    FeatureId b = registry.intern("X_TEST", FeatureKind::Property);
    EXPECT_EQ(a, b);
    EXPECT_EQ(registry.name(a), "X_TEST");
    EXPECT_EQ(registry.kind(a), FeatureKind::Property);
}

TEST(FeatureRegistryTest, FindUnknownReturnsSentinel)
{
    FeatureRegistry registry;
    EXPECT_EQ(registry.find("NOT_A_FEATURE"),
              static_cast<FeatureId>(-1));
    EXPECT_NE(registry.find("STMT_SELECT"), static_cast<FeatureId>(-1));
}

TEST(FeatureRegistryTest, Table1Counts)
{
    FeatureRegistry registry;
    // Paper Table 1: 6 statements, 58 functions, 3 data types. We count
    // the generator-visible statements (drop statements are platform
    // plumbing, not generated features).
    EXPECT_EQ(registry.ofKind(FeatureKind::Statement).size(), 6u);
    EXPECT_EQ(registry.ofKind(FeatureKind::Function).size(), 58u);
    EXPECT_EQ(registry.ofKind(FeatureKind::DataType).size(), 3u);
    // Operators: 26 binary + 10 unary + 11 constructs = 47 (Table 1).
    EXPECT_EQ(registry.ofKind(FeatureKind::Operator).size(), 47u);
    // Clauses & keywords: 6 joins + 17 clause/keyword flags.
    EXPECT_EQ(registry.ofKind(FeatureKind::Clause).size(), 23u);
}

TEST(FeatureNamesTest, CanonicalSpellings)
{
    EXPECT_EQ(features::stmt(StmtKind::CreateIndex),
              "STMT_CREATE_INDEX");
    EXPECT_EQ(features::join(JoinType::Right), "JOIN_RIGHT");
    EXPECT_EQ(features::binaryOp(BinaryOp::NullSafeEq), "OP_<=>");
    EXPECT_EQ(features::unaryOp(UnaryOp::Not), "OP_NOT");
    EXPECT_EQ(features::function("SIN"), "FN_SIN");
    EXPECT_EQ(features::dataType(DataType::Bool), "TYPE_BOOLEAN");
}

TEST(FeatureNamesTest, CompositeArgFeaturesMatchPaperNaming)
{
    // Paper Fig. 5: SIN1INT = first argument of SIN has integer type.
    EXPECT_EQ(features::functionArg("SIN", 0, DataType::Int), "SIN1INT");
    EXPECT_EQ(features::functionArg("SIN", 0, DataType::Text),
              "SIN1STRING");
    EXPECT_EQ(features::functionArg("NULLIF", 1, DataType::Bool),
              "NULLIF2BOOL");
}

TEST(FeatureRegistryTest, DescribeRendersSortedNames)
{
    FeatureRegistry registry;
    FeatureSet set;
    set.insert(registry.intern("FN_SIN", FeatureKind::Function));
    set.insert(registry.intern("OP_NOT", FeatureKind::Operator));
    std::string rendered = registry.describe(set);
    EXPECT_NE(rendered.find("FN_SIN"), std::string::npos);
    EXPECT_NE(rendered.find("OP_NOT"), std::string::npos);
}

TEST(FeatureRegistryTest, CompositeFeaturesInternedOnDemand)
{
    FeatureRegistry registry;
    size_t before = registry.size();
    registry.intern(features::functionArg("ABS", 0, DataType::Text),
                    FeatureKind::Property);
    EXPECT_EQ(registry.size(), before + 1);
}

} // namespace
} // namespace sqlpp
