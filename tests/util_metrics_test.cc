/**
 * @file
 * MetricsRegistry unit tests: registration, bucket math, lanes, the
 * export formats, and a multi-threaded hammer that checks exact totals
 * (run it under -DSQLPP_SANITIZE=thread to validate the lock-free
 * paths).
 */
#include "util/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace sqlpp {
namespace {

/**
 * The registry is process-wide; every test starts from zeroed values.
 * Names are per-test-unique so kind registrations cannot collide.
 */
class MetricsTest : public ::testing::Test
{
  protected:
    void SetUp() override { MetricsRegistry::instance().reset(); }
};

TEST_F(MetricsTest, CounterAccumulates)
{
    auto &registry = MetricsRegistry::instance();
    size_t id = registry.metricId("test.counter.basic",
                                  MetricKind::Counter);
    registry.add(id);
    registry.add(id, 41);
    EXPECT_EQ(registry.counterTotal("test.counter.basic"), 42u);
}

TEST_F(MetricsTest, SameNameSameId)
{
    auto &registry = MetricsRegistry::instance();
    size_t a = registry.metricId("test.counter.sameid",
                                 MetricKind::Counter);
    size_t b = registry.metricId("test.counter.sameid",
                                 MetricKind::Counter);
    EXPECT_EQ(a, b);
}

TEST_F(MetricsTest, GaugeKeepsLastValue)
{
    auto &registry = MetricsRegistry::instance();
    size_t id = registry.metricId("test.gauge.basic", MetricKind::Gauge);
    registry.set(id, 7);
    registry.set(id, 3);
    EXPECT_EQ(registry.counterTotal("test.gauge.basic"), 3u);
}

TEST_F(MetricsTest, HistogramCountAndSum)
{
    auto &registry = MetricsRegistry::instance();
    size_t id = registry.metricId("test.histogram.basic",
                                  MetricKind::Histogram);
    registry.observe(id, 0);
    registry.observe(id, 1);
    registry.observe(id, 100);
    EXPECT_EQ(registry.histogramCount("test.histogram.basic"), 3u);
    EXPECT_EQ(registry.histogramSum("test.histogram.basic"), 101u);
}

TEST_F(MetricsTest, BucketIndexIsBitWidth)
{
    EXPECT_EQ(MetricsRegistry::bucketIndex(0), 0u);
    EXPECT_EQ(MetricsRegistry::bucketIndex(1), 1u);
    EXPECT_EQ(MetricsRegistry::bucketIndex(2), 2u);
    EXPECT_EQ(MetricsRegistry::bucketIndex(3), 2u);
    EXPECT_EQ(MetricsRegistry::bucketIndex(4), 3u);
    EXPECT_EQ(MetricsRegistry::bucketIndex(1023), 10u);
    EXPECT_EQ(MetricsRegistry::bucketIndex(1024), 11u);
    // Everything wider than the table folds into the last bucket.
    EXPECT_EQ(MetricsRegistry::bucketIndex(UINT64_MAX),
              MetricsRegistry::kHistogramBuckets - 1);
}

TEST_F(MetricsTest, BucketBoundsArePowersOfTwo)
{
    EXPECT_EQ(MetricsRegistry::bucketUpperBound(0), 0u);
    EXPECT_EQ(MetricsRegistry::bucketUpperBound(1), 1u);
    EXPECT_EQ(MetricsRegistry::bucketUpperBound(2), 3u);
    EXPECT_EQ(MetricsRegistry::bucketUpperBound(3), 7u);
    EXPECT_EQ(MetricsRegistry::bucketUpperBound(
                  MetricsRegistry::kHistogramBuckets - 1),
              UINT64_MAX);
    // Each value lands in a bucket whose bound covers it.
    for (uint64_t value : {0ull, 1ull, 5ull, 1000ull, 123456789ull}) {
        size_t bucket = MetricsRegistry::bucketIndex(value);
        EXPECT_LE(value, MetricsRegistry::bucketUpperBound(bucket));
        if (bucket > 0)
            EXPECT_GT(value,
                      MetricsRegistry::bucketUpperBound(bucket - 1));
    }
}

TEST_F(MetricsTest, ShardScopeSplitsLanes)
{
    auto &registry = MetricsRegistry::instance();
    size_t id =
        registry.metricId("test.counter.lanes", MetricKind::Counter);
    registry.add(id, 5); // lane 0 (unlabeled)
    {
        MetricsShardScope scope(0, "shard-a");
        registry.add(id, 7);
        {
            // Scopes nest; the inner lane wins until it closes.
            MetricsShardScope inner(1, "shard-b");
            registry.add(id, 11);
        }
        registry.add(id, 13);
    }
    registry.add(id, 17);
    EXPECT_EQ(registry.counterTotal("test.counter.lanes"),
              5u + 7u + 11u + 13u + 17u);

    std::string json = exportMetricsJson();
    EXPECT_NE(json.find("\"shard\": \"shard-a\", \"value\": 20"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"shard\": \"shard-b\", \"value\": 11"),
              std::string::npos)
        << json;
}

TEST_F(MetricsTest, ResetZeroesButKeepsRegistrations)
{
    auto &registry = MetricsRegistry::instance();
    size_t id =
        registry.metricId("test.counter.reset", MetricKind::Counter);
    registry.add(id, 9);
    size_t before = registry.registered();
    registry.reset();
    EXPECT_EQ(registry.counterTotal("test.counter.reset"), 0u);
    EXPECT_EQ(registry.registered(), before);
    registry.add(id, 2); // resolved id survives the reset
    EXPECT_EQ(registry.counterTotal("test.counter.reset"), 2u);
}

TEST_F(MetricsTest, TimerValuesStayOutOfDefaultJson)
{
    auto &registry = MetricsRegistry::instance();
    size_t id =
        registry.metricId("test.timer.hidden_us", MetricKind::Timer);
    registry.observe(id, 123456);
    std::string json = exportMetricsJson();
    // The observation count is deterministic and exported; the
    // wall-clock sum and buckets are not.
    EXPECT_NE(json.find("\"test.timer.hidden_us\", \"kind\": \"timer\", "
                        "\"count\": 1"),
              std::string::npos)
        << json;
    EXPECT_EQ(json.find("123456"), std::string::npos) << json;

    MetricsJsonOptions timings;
    timings.includeTimings = true;
    std::string full = exportMetricsJson(timings);
    EXPECT_NE(full.find("\"sum\": 123456"), std::string::npos) << full;
}

TEST_F(MetricsTest, HistogramBucketsExportSparse)
{
    auto &registry = MetricsRegistry::instance();
    size_t id = registry.metricId("test.histogram.sparse",
                                  MetricKind::Histogram);
    registry.observe(id, 3);
    registry.observe(id, 3);
    std::string json = exportMetricsJson();
    // Exactly one non-empty bucket is listed; empty ones are omitted.
    EXPECT_NE(json.find("\"test.histogram.sparse\", \"kind\": "
                        "\"histogram\", \"count\": 2, \"sum\": 6, "
                        "\"buckets\": [{\"le\": 3, \"count\": 2}]"),
              std::string::npos)
        << json;
}

TEST_F(MetricsTest, ExportIsSortedByName)
{
    auto &registry = MetricsRegistry::instance();
    registry.addByName("test.sort.zzz", 1);
    registry.addByName("test.sort.aaa", 1);
    std::string json = exportMetricsJson();
    size_t aaa = json.find("test.sort.aaa");
    size_t zzz = json.find("test.sort.zzz");
    ASSERT_NE(aaa, std::string::npos);
    ASSERT_NE(zzz, std::string::npos);
    EXPECT_LT(aaa, zzz);
}

TEST_F(MetricsTest, DeclarePlatformMetricsIsIdempotent)
{
    declarePlatformMetrics();
    size_t after_first = MetricsRegistry::instance().registered();
    declarePlatformMetrics();
    EXPECT_EQ(MetricsRegistry::instance().registered(), after_first);
    std::string json = exportMetricsJson();
    EXPECT_NE(json.find("connection.statements"), std::string::npos);
    EXPECT_NE(json.find("oracle.tlp.pass"), std::string::npos);
}

TEST_F(MetricsTest, SummaryTableMentionsValues)
{
    auto &registry = MetricsRegistry::instance();
    registry.addByName("test.summary.counter", 42);
    std::string table = metricsSummaryTable();
    EXPECT_NE(table.find("test.summary.counter"), std::string::npos);
    EXPECT_NE(table.find("42"), std::string::npos);
}

/**
 * N threads hammer one counter and one histogram concurrently, half of
 * them inside per-thread shard scopes. Totals must be exact — the
 * whole point of the relaxed-atomic cells — and TSan must stay quiet
 * about the registration and lane-creation races.
 */
TEST_F(MetricsTest, ConcurrentHammerHasExactTotals)
{
    auto &registry = MetricsRegistry::instance();
    constexpr size_t kThreads = 8;
    constexpr size_t kIterations = 20000;

    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &registry]() {
            // Resolve ids from every thread concurrently: exercises
            // the registration mutex against hot-path readers.
            size_t counter = registry.metricId("test.concurrent.counter",
                                               MetricKind::Counter);
            size_t histogram = registry.metricId(
                "test.concurrent.histogram", MetricKind::Histogram);
            if (t % 2 == 0) {
                MetricsShardScope scope(t / 2, "hammer-" +
                                                   std::to_string(t / 2));
                for (size_t i = 0; i < kIterations; ++i) {
                    registry.add(counter);
                    registry.observe(histogram, i % 17);
                }
            } else {
                for (size_t i = 0; i < kIterations; ++i) {
                    registry.add(counter);
                    registry.observe(histogram, i % 17);
                }
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(registry.counterTotal("test.concurrent.counter"),
              kThreads * kIterations);
    EXPECT_EQ(registry.histogramCount("test.concurrent.histogram"),
              kThreads * kIterations);
    uint64_t per_thread_sum = 0;
    for (size_t i = 0; i < kIterations; ++i)
        per_thread_sum += i % 17;
    EXPECT_EQ(registry.histogramSum("test.concurrent.histogram"),
              kThreads * per_thread_sum);
}

/** Concurrent SQLPP_SPAN use: timer counts must be exact too. */
TEST_F(MetricsTest, ConcurrentSpansCountExactly)
{
    constexpr size_t kThreads = 4;
    constexpr size_t kIterations = 2000;
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([]() {
            for (size_t i = 0; i < kIterations; ++i) {
                SQLPP_SPAN("test.concurrent.span_us");
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
#ifndef SQLPP_NO_METRICS
    EXPECT_EQ(MetricsRegistry::instance().histogramCount(
                  "test.concurrent.span_us"),
              kThreads * kIterations);
#endif
}

} // namespace
} // namespace sqlpp
