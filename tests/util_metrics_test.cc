/**
 * @file
 * MetricsRegistry unit tests: registration, bucket math, lanes, the
 * export formats, and a multi-threaded hammer that checks exact totals
 * (run it under -DSQLPP_SANITIZE=thread to validate the lock-free
 * paths).
 */
#include "util/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace sqlpp {
namespace {

/**
 * The registry is process-wide; every test starts from zeroed values.
 * Names are per-test-unique so kind registrations cannot collide.
 */
class MetricsTest : public ::testing::Test
{
  protected:
    void SetUp() override { MetricsRegistry::instance().reset(); }
};

TEST_F(MetricsTest, CounterAccumulates)
{
    auto &registry = MetricsRegistry::instance();
    size_t id = registry.metricId("test.counter.basic",
                                  MetricKind::Counter);
    registry.add(id);
    registry.add(id, 41);
    EXPECT_EQ(registry.counterTotal("test.counter.basic"), 42u);
}

TEST_F(MetricsTest, SameNameSameId)
{
    auto &registry = MetricsRegistry::instance();
    size_t a = registry.metricId("test.counter.sameid",
                                 MetricKind::Counter);
    size_t b = registry.metricId("test.counter.sameid",
                                 MetricKind::Counter);
    EXPECT_EQ(a, b);
}

TEST_F(MetricsTest, GaugeKeepsLastValue)
{
    auto &registry = MetricsRegistry::instance();
    size_t id = registry.metricId("test.gauge.basic", MetricKind::Gauge);
    registry.set(id, 7);
    registry.set(id, 3);
    EXPECT_EQ(registry.counterTotal("test.gauge.basic"), 3u);
}

TEST_F(MetricsTest, HistogramCountAndSum)
{
    auto &registry = MetricsRegistry::instance();
    size_t id = registry.metricId("test.histogram.basic",
                                  MetricKind::Histogram);
    registry.observe(id, 0);
    registry.observe(id, 1);
    registry.observe(id, 100);
    EXPECT_EQ(registry.histogramCount("test.histogram.basic"), 3u);
    EXPECT_EQ(registry.histogramSum("test.histogram.basic"), 101u);
}

TEST_F(MetricsTest, BucketIndexIsBitWidth)
{
    EXPECT_EQ(MetricsRegistry::bucketIndex(0), 0u);
    EXPECT_EQ(MetricsRegistry::bucketIndex(1), 1u);
    EXPECT_EQ(MetricsRegistry::bucketIndex(2), 2u);
    EXPECT_EQ(MetricsRegistry::bucketIndex(3), 2u);
    EXPECT_EQ(MetricsRegistry::bucketIndex(4), 3u);
    EXPECT_EQ(MetricsRegistry::bucketIndex(1023), 10u);
    EXPECT_EQ(MetricsRegistry::bucketIndex(1024), 11u);
    // Everything wider than the table folds into the last bucket.
    EXPECT_EQ(MetricsRegistry::bucketIndex(UINT64_MAX),
              MetricsRegistry::kHistogramBuckets - 1);
}

TEST_F(MetricsTest, BucketBoundsArePowersOfTwo)
{
    EXPECT_EQ(MetricsRegistry::bucketUpperBound(0), 0u);
    EXPECT_EQ(MetricsRegistry::bucketUpperBound(1), 1u);
    EXPECT_EQ(MetricsRegistry::bucketUpperBound(2), 3u);
    EXPECT_EQ(MetricsRegistry::bucketUpperBound(3), 7u);
    EXPECT_EQ(MetricsRegistry::bucketUpperBound(
                  MetricsRegistry::kHistogramBuckets - 1),
              UINT64_MAX);
    // Each value lands in a bucket whose bound covers it.
    for (uint64_t value : {0ull, 1ull, 5ull, 1000ull, 123456789ull}) {
        size_t bucket = MetricsRegistry::bucketIndex(value);
        EXPECT_LE(value, MetricsRegistry::bucketUpperBound(bucket));
        if (bucket > 0)
            EXPECT_GT(value,
                      MetricsRegistry::bucketUpperBound(bucket - 1));
    }
}

TEST_F(MetricsTest, ShardScopeSplitsLanes)
{
    auto &registry = MetricsRegistry::instance();
    size_t id =
        registry.metricId("test.counter.lanes", MetricKind::Counter);
    registry.add(id, 5); // lane 0 (unlabeled)
    {
        MetricsShardScope scope(0, "shard-a");
        registry.add(id, 7);
        {
            // Scopes nest; the inner lane wins until it closes.
            MetricsShardScope inner(1, "shard-b");
            registry.add(id, 11);
        }
        registry.add(id, 13);
    }
    registry.add(id, 17);
    EXPECT_EQ(registry.counterTotal("test.counter.lanes"),
              5u + 7u + 11u + 13u + 17u);

    std::string json = exportMetricsJson();
    EXPECT_NE(json.find("\"shard\": \"shard-a\", \"value\": 20"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"shard\": \"shard-b\", \"value\": 11"),
              std::string::npos)
        << json;
}

TEST_F(MetricsTest, ResetZeroesButKeepsRegistrations)
{
    auto &registry = MetricsRegistry::instance();
    size_t id =
        registry.metricId("test.counter.reset", MetricKind::Counter);
    registry.add(id, 9);
    size_t before = registry.registered();
    registry.reset();
    EXPECT_EQ(registry.counterTotal("test.counter.reset"), 0u);
    EXPECT_EQ(registry.registered(), before);
    registry.add(id, 2); // resolved id survives the reset
    EXPECT_EQ(registry.counterTotal("test.counter.reset"), 2u);
}

TEST_F(MetricsTest, TimerValuesStayOutOfDefaultJson)
{
    auto &registry = MetricsRegistry::instance();
    size_t id =
        registry.metricId("test.timer.hidden_us", MetricKind::Timer);
    registry.observe(id, 123456);
    std::string json = exportMetricsJson();
    // The observation count is deterministic and exported; the
    // wall-clock sum and buckets are not.
    EXPECT_NE(json.find("\"test.timer.hidden_us\", \"kind\": \"timer\", "
                        "\"count\": 1"),
              std::string::npos)
        << json;
    EXPECT_EQ(json.find("123456"), std::string::npos) << json;

    MetricsJsonOptions timings;
    timings.includeTimings = true;
    std::string full = exportMetricsJson(timings);
    EXPECT_NE(full.find("\"sum\": 123456"), std::string::npos) << full;
}

TEST_F(MetricsTest, HistogramBucketsExportSparse)
{
    auto &registry = MetricsRegistry::instance();
    size_t id = registry.metricId("test.histogram.sparse",
                                  MetricKind::Histogram);
    registry.observe(id, 3);
    registry.observe(id, 3);
    std::string json = exportMetricsJson();
    // Exactly one non-empty bucket is listed; empty ones are omitted.
    EXPECT_NE(json.find("\"test.histogram.sparse\", \"kind\": "
                        "\"histogram\", \"count\": 2, \"sum\": 6, "
                        "\"buckets\": [{\"le\": 3, \"count\": 2}]"),
              std::string::npos)
        << json;
}

TEST_F(MetricsTest, ExportIsSortedByName)
{
    auto &registry = MetricsRegistry::instance();
    registry.addByName("test.sort.zzz", 1);
    registry.addByName("test.sort.aaa", 1);
    std::string json = exportMetricsJson();
    size_t aaa = json.find("test.sort.aaa");
    size_t zzz = json.find("test.sort.zzz");
    ASSERT_NE(aaa, std::string::npos);
    ASSERT_NE(zzz, std::string::npos);
    EXPECT_LT(aaa, zzz);
}

TEST_F(MetricsTest, DeclarePlatformMetricsIsIdempotent)
{
    declarePlatformMetrics();
    size_t after_first = MetricsRegistry::instance().registered();
    declarePlatformMetrics();
    EXPECT_EQ(MetricsRegistry::instance().registered(), after_first);
    std::string json = exportMetricsJson();
    EXPECT_NE(json.find("connection.statements"), std::string::npos);
    EXPECT_NE(json.find("oracle.tlp.pass"), std::string::npos);
}

TEST_F(MetricsTest, SummaryTableMentionsValues)
{
    auto &registry = MetricsRegistry::instance();
    registry.addByName("test.summary.counter", 42);
    std::string table = metricsSummaryTable();
    EXPECT_NE(table.find("test.summary.counter"), std::string::npos);
    EXPECT_NE(table.find("42"), std::string::npos);
}

/**
 * N threads hammer one counter and one histogram concurrently, half of
 * them inside per-thread shard scopes. Totals must be exact — the
 * whole point of the relaxed-atomic cells — and TSan must stay quiet
 * about the registration and lane-creation races.
 */
TEST_F(MetricsTest, ConcurrentHammerHasExactTotals)
{
    auto &registry = MetricsRegistry::instance();
    constexpr size_t kThreads = 8;
    constexpr size_t kIterations = 20000;

    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &registry]() {
            // Resolve ids from every thread concurrently: exercises
            // the registration mutex against hot-path readers.
            size_t counter = registry.metricId("test.concurrent.counter",
                                               MetricKind::Counter);
            size_t histogram = registry.metricId(
                "test.concurrent.histogram", MetricKind::Histogram);
            if (t % 2 == 0) {
                MetricsShardScope scope(t / 2, "hammer-" +
                                                   std::to_string(t / 2));
                for (size_t i = 0; i < kIterations; ++i) {
                    registry.add(counter);
                    registry.observe(histogram, i % 17);
                }
            } else {
                for (size_t i = 0; i < kIterations; ++i) {
                    registry.add(counter);
                    registry.observe(histogram, i % 17);
                }
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(registry.counterTotal("test.concurrent.counter"),
              kThreads * kIterations);
    EXPECT_EQ(registry.histogramCount("test.concurrent.histogram"),
              kThreads * kIterations);
    uint64_t per_thread_sum = 0;
    for (size_t i = 0; i < kIterations; ++i)
        per_thread_sum += i % 17;
    EXPECT_EQ(registry.histogramSum("test.concurrent.histogram"),
              kThreads * per_thread_sum);
}

/**
 * Quantile pins: the interpolation is deterministic arithmetic over
 * the power-of-two bucket layout (bucket 0 = value 0, bucket i covers
 * [2^(i-1), 2^i - 1]), so exact doubles are pinned here.
 */
TEST_F(MetricsTest, QuantileInterpolatesWithinOneBucket)
{
    // 10 observations in bucket 3 ([4, 7]).
    uint64_t buckets[8] = {0, 0, 0, 10, 0, 0, 0, 0};
    // p50: rank 5, half-way through the bucket -> 4 + 3 * 0.5.
    EXPECT_DOUBLE_EQ(histogramQuantileFromBuckets(buckets, 8, 0.50),
                     5.5);
    EXPECT_DOUBLE_EQ(histogramQuantileFromBuckets(buckets, 8, 0.99),
                     4.0 + 3.0 * 0.99);
}

TEST_F(MetricsTest, QuantileSpansBuckets)
{
    // 2 zeros (bucket 0) + 8 observations in bucket 4 ([8, 15]).
    uint64_t buckets[8] = {2, 0, 0, 0, 8, 0, 0, 0};
    // p50: rank 5 lands in bucket 4 with 3 of its 8 hits consumed.
    EXPECT_DOUBLE_EQ(histogramQuantileFromBuckets(buckets, 8, 0.50),
                     8.0 + 7.0 * (5.0 - 2.0) / 8.0);
    EXPECT_DOUBLE_EQ(histogramQuantileFromBuckets(buckets, 8, 0.95),
                     8.0 + 7.0 * (9.5 - 2.0) / 8.0);
    // Rank inside bucket 0 is exactly zero.
    EXPECT_DOUBLE_EQ(histogramQuantileFromBuckets(buckets, 8, 0.10),
                     0.0);
}

TEST_F(MetricsTest, QuantileEdgeCases)
{
    EXPECT_DOUBLE_EQ(histogramQuantileFromBuckets(nullptr, 0, 0.5),
                     0.0);
    uint64_t empty[4] = {0, 0, 0, 0};
    EXPECT_DOUBLE_EQ(histogramQuantileFromBuckets(empty, 4, 0.5), 0.0);
    uint64_t zeros[4] = {10, 0, 0, 0};
    EXPECT_DOUBLE_EQ(histogramQuantileFromBuckets(zeros, 4, 0.99),
                     0.0);
    // Overflow bucket clamps to its lower bound (Prometheus-style).
    uint64_t overflow[4] = {0, 0, 0, 5};
    EXPECT_DOUBLE_EQ(histogramQuantileFromBuckets(overflow, 4, 0.99),
                     4.0);
}

TEST_F(MetricsTest, MetricQuantilesReadTheLiveRegistry)
{
    auto &registry = MetricsRegistry::instance();
    size_t id = registry.metricId("test.quantile.live",
                                  MetricKind::Histogram);
    // Bucket 1 is the degenerate range [1, 1]: every quantile is 1.
    for (int i = 0; i < 100; ++i)
        registry.observe(id, 1);
    HistogramQuantiles quantiles;
    ASSERT_TRUE(metricQuantiles("test.quantile.live", quantiles));
    EXPECT_DOUBLE_EQ(quantiles.p50, 1.0);
    EXPECT_DOUBLE_EQ(quantiles.p95, 1.0);
    EXPECT_DOUBLE_EQ(quantiles.p99, 1.0);

    EXPECT_FALSE(metricQuantiles("test.quantile.absent", quantiles));
    registry.addByName("test.quantile.scalar", 3);
    EXPECT_FALSE(metricQuantiles("test.quantile.scalar", quantiles));
}

TEST_F(MetricsTest, BucketTotalsSumAcrossLanes)
{
    auto &registry = MetricsRegistry::instance();
    size_t id = registry.metricId("test.buckets.lanes",
                                  MetricKind::Histogram);
    registry.observe(id, 4); // lane 0
    {
        MetricsShardScope scope(0, "lane-a");
        registry.observe(id, 4);
        registry.observe(id, 0);
    }
    std::vector<uint64_t> buckets =
        registry.histogramBucketTotals("test.buckets.lanes");
    ASSERT_EQ(buckets.size(), MetricsRegistry::kHistogramBuckets);
    EXPECT_EQ(buckets[0], 1u); // the zero
    EXPECT_EQ(buckets[MetricsRegistry::bucketIndex(4)], 2u);
    EXPECT_TRUE(
        registry.histogramBucketTotals("test.buckets.absent").empty());
}

TEST_F(MetricsTest, SummaryTableCarriesQuantileColumns)
{
    auto &registry = MetricsRegistry::instance();
    size_t id = registry.metricId("test.summary.quantiles",
                                  MetricKind::Histogram);
    for (int i = 0; i < 10; ++i)
        registry.observe(id, 1);
    std::string table = metricsSummaryTable();
    EXPECT_NE(table.find("p50"), std::string::npos);
    EXPECT_NE(table.find("p95"), std::string::npos);
    EXPECT_NE(table.find("p99"), std::string::npos);
    // All ten observations sit in the degenerate [1, 1] bucket.
    size_t row = table.find("test.summary.quantiles");
    ASSERT_NE(row, std::string::npos);
    std::string line = table.substr(row, table.find('\n', row) - row);
    EXPECT_NE(line.find(" 1 "), std::string::npos) << line;
}

TEST_F(MetricsTest, PrometheusExportsScalars)
{
    auto &registry = MetricsRegistry::instance();
    registry.addByName("test.prom.counter", 5);
    size_t gauge = registry.metricId("test.prom.gauge",
                                     MetricKind::Gauge);
    registry.set(gauge, 9);
    std::string text = exportMetricsPrometheus();
    EXPECT_NE(text.find("# TYPE sqlpp_test_prom_counter counter\n"
                        "sqlpp_test_prom_counter 5\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("# TYPE sqlpp_test_prom_gauge gauge\n"
                        "sqlpp_test_prom_gauge 9\n"),
              std::string::npos)
        << text;
}

TEST_F(MetricsTest, PrometheusHistogramIsCumulative)
{
    auto &registry = MetricsRegistry::instance();
    size_t id = registry.metricId("test.prom.histogram",
                                  MetricKind::Histogram);
    registry.observe(id, 0);
    registry.observe(id, 3);
    registry.observe(id, 3);
    std::string text = exportMetricsPrometheus();
    // Non-empty bounds only, counts cumulative, then +Inf/sum/count.
    EXPECT_NE(text.find("sqlpp_test_prom_histogram_bucket{le=\"0\"} 1"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("sqlpp_test_prom_histogram_bucket{le=\"3\"} 3"),
              std::string::npos)
        << text;
    EXPECT_NE(
        text.find("sqlpp_test_prom_histogram_bucket{le=\"+Inf\"} 3"),
        std::string::npos)
        << text;
    EXPECT_NE(text.find("sqlpp_test_prom_histogram_sum 6"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("sqlpp_test_prom_histogram_count 3"),
              std::string::npos)
        << text;
}

TEST_F(MetricsTest, PrometheusSanitizesNamesAndKeepsZeroSeries)
{
    auto &registry = MetricsRegistry::instance();
    registry.addByName("test.prom-weird.name", 1);
    declarePlatformMetrics();
    std::string text = exportMetricsPrometheus();
    EXPECT_NE(text.find("sqlpp_test_prom_weird_name 1"),
              std::string::npos);
    // Declared-but-untouched metrics still emit a stable zero series.
    EXPECT_NE(text.find("sqlpp_connection_statements 0"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("sqlpp_campaign_trace_dropped 0"),
              std::string::npos)
        << text;
}

/** Concurrent SQLPP_SPAN use: timer counts must be exact too. */
TEST_F(MetricsTest, ConcurrentSpansCountExactly)
{
    constexpr size_t kThreads = 4;
    constexpr size_t kIterations = 2000;
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([]() {
            for (size_t i = 0; i < kIterations; ++i) {
                SQLPP_SPAN("test.concurrent.span_us");
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
#ifndef SQLPP_NO_METRICS
    EXPECT_EQ(MetricsRegistry::instance().histogramCount(
                  "test.concurrent.span_us"),
              kThreads * kIterations);
#endif
}

} // namespace
} // namespace sqlpp
