/**
 * @file
 * Unit tests for AST construction, cloning, tree walking, and printing.
 */
#include <gtest/gtest.h>

#include "sqlir/ast.h"
#include "sqlir/printer.h"

namespace sqlpp {
namespace {

ExprPtr
lit(int64_t v)
{
    return std::make_unique<LiteralExpr>(Value::integer(v));
}

ExprPtr
col(const std::string &table, const std::string &column)
{
    return std::make_unique<ColumnRefExpr>(table, column);
}

TEST(AstTest, BinaryOpSymbols)
{
    EXPECT_STREQ(binaryOpSymbol(BinaryOp::NullSafeEq), "<=>");
    EXPECT_STREQ(binaryOpSymbol(BinaryOp::NotEq), "<>");
    EXPECT_STREQ(binaryOpSymbol(BinaryOp::NotEqBang), "!=");
    EXPECT_STREQ(binaryOpSymbol(BinaryOp::Concat), "||");
    EXPECT_STREQ(binaryOpSymbol(BinaryOp::IsDistinctFrom),
                 "IS DISTINCT FROM");
}

TEST(AstTest, OpClassification)
{
    EXPECT_TRUE(isComparisonOp(BinaryOp::Eq));
    EXPECT_TRUE(isComparisonOp(BinaryOp::NullSafeEq));
    EXPECT_FALSE(isComparisonOp(BinaryOp::Add));
    EXPECT_TRUE(isLogicalOp(BinaryOp::And));
    EXPECT_FALSE(isLogicalOp(BinaryOp::Like));
}

TEST(AstTest, CloneBinaryIsDeep)
{
    auto expr = std::make_unique<BinaryExpr>(BinaryOp::Add, lit(1), lit(2));
    ExprPtr cloned = expr->clone();
    ASSERT_EQ(cloned->kind(), ExprKind::Binary);
    auto *bin = static_cast<BinaryExpr *>(cloned.get());
    EXPECT_NE(bin->lhs.get(), expr->lhs.get());
    EXPECT_EQ(printExpr(*cloned), printExpr(*expr));
}

TEST(AstTest, CloneCasePreservesArms)
{
    std::vector<CaseExpr::Arm> arms;
    arms.push_back(CaseExpr::Arm{lit(1), lit(10)});
    arms.push_back(CaseExpr::Arm{lit(2), lit(20)});
    auto expr = std::make_unique<CaseExpr>(col("", "c0"), std::move(arms),
                                           lit(99));
    ExprPtr cloned = expr->clone();
    EXPECT_EQ(printExpr(*cloned), printExpr(*expr));
}

TEST(AstTest, ForEachExprNodeVisitsAll)
{
    // (1 + 2) * c0 has 5 nodes.
    auto sum = std::make_unique<BinaryExpr>(BinaryOp::Add, lit(1), lit(2));
    auto expr = std::make_unique<BinaryExpr>(BinaryOp::Mul, std::move(sum),
                                             col("t0", "c0"));
    int count = 0;
    forEachExprNode(*expr, [&](const Expr &) { ++count; });
    EXPECT_EQ(count, 5);
}

TEST(AstTest, SelectCloneIsDeep)
{
    SelectStmt select;
    SelectItem item;
    item.expr = col("t0", "c0");
    select.items.push_back(std::move(item));
    TableRef ref;
    ref.name = "t0";
    select.from.push_back(std::move(ref));
    select.where = std::make_unique<BinaryExpr>(BinaryOp::Greater,
                                                col("t0", "c0"), lit(5));
    select.limit = 10;

    SelectPtr cloned = select.cloneSelect();
    EXPECT_EQ(printSelect(*cloned), printSelect(select));
    // Mutating the clone must not affect the original.
    cloned->limit = 99;
    EXPECT_EQ(select.limit, 10);
}

TEST(AstTest, TableRefBindingName)
{
    TableRef ref;
    ref.name = "t0";
    EXPECT_EQ(ref.bindingName(), "t0");
    ref.alias = "a";
    EXPECT_EQ(ref.bindingName(), "a");
}

TEST(PrinterTest, LiteralAndColumn)
{
    EXPECT_EQ(printExpr(*lit(42)), "42");
    EXPECT_EQ(printExpr(*col("t0", "c0")), "t0.c0");
    EXPECT_EQ(printExpr(*col("", "c0")), "c0");
    LiteralExpr text(Value::text("a'b"));
    EXPECT_EQ(printExpr(text), "'a''b'");
}

TEST(PrinterTest, FullyParenthesisedBinary)
{
    auto sum = std::make_unique<BinaryExpr>(BinaryOp::Add, lit(1), lit(2));
    auto expr = std::make_unique<BinaryExpr>(BinaryOp::Mul, std::move(sum),
                                             lit(3));
    EXPECT_EQ(printExpr(*expr), "((1 + 2) * 3)");
}

TEST(PrinterTest, UnaryForms)
{
    EXPECT_EQ(printExpr(UnaryExpr(UnaryOp::Neg, lit(5))), "(- 5)");
    EXPECT_EQ(printExpr(UnaryExpr(UnaryOp::Not, lit(1))), "(NOT 1)");
    EXPECT_EQ(printExpr(UnaryExpr(UnaryOp::IsNull, col("", "c0"))),
              "(c0 IS NULL)");
    EXPECT_EQ(printExpr(UnaryExpr(UnaryOp::IsNotTrue, col("", "c0"))),
              "(c0 IS NOT TRUE)");
}

TEST(PrinterTest, BetweenAndIn)
{
    BetweenExpr between(col("", "c0"), lit(1), lit(9), /*negated=*/true);
    EXPECT_EQ(printExpr(between), "(c0 NOT BETWEEN 1 AND 9)");

    std::vector<ExprPtr> items;
    items.push_back(lit(1));
    items.push_back(lit(2));
    InListExpr in(col("", "c0"), std::move(items), /*negated=*/false);
    EXPECT_EQ(printExpr(in), "(c0 IN (1, 2))");
}

TEST(PrinterTest, FunctionForms)
{
    FunctionExpr count("COUNT", {}, /*star=*/true);
    EXPECT_EQ(printExpr(count), "COUNT(*)");

    std::vector<ExprPtr> args;
    args.push_back(col("", "c0"));
    FunctionExpr sum("SUM", std::move(args), false, /*distinct=*/true);
    EXPECT_EQ(printExpr(sum), "SUM(DISTINCT c0)");
}

TEST(PrinterTest, CastExpr)
{
    CastExpr cast(lit(1), DataType::Text);
    EXPECT_EQ(printExpr(cast), "CAST(1 AS TEXT)");
}

TEST(PrinterTest, CreateTable)
{
    CreateTableStmt stmt;
    stmt.name = "t0";
    stmt.columns.push_back({"c0", DataType::Int, false, false, true});
    stmt.columns.push_back({"c1", DataType::Text, true, true, false});
    EXPECT_EQ(printStmt(stmt),
              "CREATE TABLE t0 (c0 INTEGER PRIMARY KEY, "
              "c1 TEXT UNIQUE NOT NULL)");
}

TEST(PrinterTest, CreateIndexWithPartialPredicate)
{
    CreateIndexStmt stmt;
    stmt.name = "i0";
    stmt.table = "t0";
    stmt.columns = {"c0", "c1"};
    stmt.unique = true;
    stmt.where = std::make_unique<UnaryExpr>(UnaryOp::IsNotNull,
                                             col("", "c0"));
    EXPECT_EQ(printStmt(stmt),
              "CREATE UNIQUE INDEX i0 ON t0(c0, c1) WHERE (c0 IS NOT NULL)");
}

TEST(PrinterTest, Insert)
{
    InsertStmt stmt;
    stmt.table = "t0";
    stmt.columns = {"c0"};
    std::vector<ExprPtr> row;
    row.push_back(lit(1));
    stmt.rows.push_back(std::move(row));
    EXPECT_EQ(printStmt(stmt), "INSERT INTO t0 (c0) VALUES (1)");
}

TEST(PrinterTest, SelectWithEverything)
{
    SelectStmt select;
    select.distinct = true;
    SelectItem item;
    item.star = true;
    select.items.push_back(std::move(item));
    TableRef t0;
    t0.name = "t0";
    select.from.push_back(std::move(t0));
    JoinClause join;
    join.type = JoinType::Left;
    join.table.name = "t1";
    join.on = std::make_unique<BinaryExpr>(BinaryOp::Eq, col("t0", "c0"),
                                           col("t1", "c0"));
    select.joins.push_back(std::move(join));
    select.where = std::make_unique<UnaryExpr>(UnaryOp::IsNotNull,
                                               col("t0", "c0"));
    OrderTerm term;
    term.expr = col("t0", "c0");
    term.ascending = false;
    select.orderBy.push_back(std::move(term));
    select.limit = 5;
    select.offset = 2;
    EXPECT_EQ(printStmt(select),
              "SELECT DISTINCT * FROM t0 LEFT JOIN t1 ON (t0.c0 = t1.c0) "
              "WHERE (t0.c0 IS NOT NULL) ORDER BY t0.c0 DESC "
              "LIMIT 5 OFFSET 2");
}

TEST(PrinterTest, DerivedTable)
{
    SelectStmt inner;
    SelectItem one;
    one.expr = lit(1);
    one.alias = "x";
    inner.items.push_back(std::move(one));

    SelectStmt outer;
    SelectItem star;
    star.star = true;
    outer.items.push_back(std::move(star));
    TableRef derived;
    derived.subquery = inner.cloneSelect();
    derived.alias = "sub0";
    outer.from.push_back(std::move(derived));
    EXPECT_EQ(printStmt(outer),
              "SELECT * FROM (SELECT 1 AS x) AS sub0");
}

TEST(PrinterTest, SubqueryExpressions)
{
    SelectStmt sub;
    SelectItem one;
    one.expr = lit(1);
    sub.items.push_back(std::move(one));

    ExistsExpr exists(sub.cloneSelect(), /*negated=*/true);
    EXPECT_EQ(printExpr(exists), "(NOT EXISTS (SELECT 1))");

    InSubqueryExpr in(col("", "c0"), sub.cloneSelect(), /*negated=*/false);
    EXPECT_EQ(printExpr(in), "(c0 IN (SELECT 1))");

    ScalarSubqueryExpr scalar(sub.cloneSelect());
    EXPECT_EQ(printExpr(scalar), "(SELECT 1)");
}

TEST(PrinterTest, DropStatements)
{
    DropStmt drop(StmtKind::DropTable);
    drop.name = "t0";
    EXPECT_EQ(printStmt(drop), "DROP TABLE t0");
    drop.ifExists = true;
    EXPECT_EQ(printStmt(drop), "DROP TABLE IF EXISTS t0");
}

TEST(PrinterTest, AnalyzeForms)
{
    AnalyzeStmt analyze;
    EXPECT_EQ(printStmt(analyze), "ANALYZE");
    analyze.table = "t0";
    EXPECT_EQ(printStmt(analyze), "ANALYZE t0");
}

TEST(PrinterTest, CreateView)
{
    CreateViewStmt view;
    view.name = "v0";
    view.columnNames = {"c0"};
    SelectStmt select;
    SelectItem item;
    item.expr = lit(0);
    select.items.push_back(std::move(item));
    view.select = select.cloneSelect();
    EXPECT_EQ(printStmt(view), "CREATE VIEW v0(c0) AS SELECT 0");
}

} // namespace
} // namespace sqlpp
