/**
 * @file
 * End-to-end Database tests: DDL, DML, joins, grouping, subqueries,
 * views, ordering, and plan descriptions.
 */
#include <gtest/gtest.h>

#include "engine/database.h"

namespace sqlpp {
namespace {

class DatabaseTest : public ::testing::Test
{
  protected:
    ResultSet
    ok(const std::string &sql)
    {
        auto result = db.execute(sql);
        EXPECT_TRUE(result.isOk())
            << sql << " -> " << result.status().toString();
        return result.isOk() ? result.takeValue() : ResultSet();
    }

    Status
    err(const std::string &sql)
    {
        auto result = db.execute(sql);
        EXPECT_FALSE(result.isOk()) << sql;
        return result.isOk() ? Status::ok() : result.status();
    }

    Database db;
};

TEST_F(DatabaseTest, CreateInsertSelectRoundTrip)
{
    ok("CREATE TABLE t0 (c0 INT, c1 TEXT)");
    ok("INSERT INTO t0 VALUES (1, 'a'), (2, 'b')");
    ResultSet result = ok("SELECT * FROM t0");
    EXPECT_EQ(result.rowCount(), 2u);
    EXPECT_EQ(result.columnCount(), 2u);
    EXPECT_EQ(result.columns()[0], "c0");
}

TEST_F(DatabaseTest, CreateTableErrors)
{
    ok("CREATE TABLE t0 (c0 INT)");
    EXPECT_EQ(err("CREATE TABLE t0 (c0 INT)").code(),
              ErrorCode::SemanticError);
    ok("CREATE TABLE IF NOT EXISTS t0 (c0 INT)");
    EXPECT_EQ(err("CREATE TABLE t1 (c0 INT, c0 TEXT)").code(),
              ErrorCode::SemanticError);
}

TEST_F(DatabaseTest, InsertColumnSubsetsDefaultNull)
{
    ok("CREATE TABLE t0 (c0 INT, c1 TEXT)");
    ok("INSERT INTO t0 (c1) VALUES ('only')");
    ResultSet result = ok("SELECT c0, c1 FROM t0");
    EXPECT_TRUE(result.rows()[0][0].isNull());
    EXPECT_EQ(result.rows()[0][1].asText(), "only");
}

TEST_F(DatabaseTest, InsertErrors)
{
    ok("CREATE TABLE t0 (c0 INT)");
    EXPECT_EQ(err("INSERT INTO t9 VALUES (1)").code(),
              ErrorCode::SemanticError);
    EXPECT_EQ(err("INSERT INTO t0 (nope) VALUES (1)").code(),
              ErrorCode::SemanticError);
    EXPECT_EQ(err("INSERT INTO t0 VALUES (1, 2)").code(),
              ErrorCode::SemanticError);
}

TEST_F(DatabaseTest, NotNullConstraint)
{
    ok("CREATE TABLE t0 (c0 INT NOT NULL)");
    EXPECT_EQ(err("INSERT INTO t0 VALUES (NULL)").code(),
              ErrorCode::RuntimeError);
    ok("INSERT OR IGNORE INTO t0 VALUES (NULL), (3)");
    EXPECT_EQ(ok("SELECT * FROM t0").rowCount(), 1u);
}

TEST_F(DatabaseTest, UniqueAndPrimaryKeyConstraints)
{
    ok("CREATE TABLE t0 (c0 INT PRIMARY KEY, c1 INT UNIQUE)");
    ok("INSERT INTO t0 VALUES (1, 10)");
    EXPECT_EQ(err("INSERT INTO t0 VALUES (1, 11)").code(),
              ErrorCode::RuntimeError);
    EXPECT_EQ(err("INSERT INTO t0 VALUES (2, 10)").code(),
              ErrorCode::RuntimeError);
    // NULL never conflicts in UNIQUE columns.
    ok("INSERT INTO t0 VALUES (3, NULL)");
    ok("INSERT INTO t0 VALUES (4, NULL)");
    // PRIMARY KEY implies NOT NULL.
    EXPECT_EQ(err("INSERT INTO t0 VALUES (NULL, 12)").code(),
              ErrorCode::RuntimeError);
}

TEST_F(DatabaseTest, TextAffinityOnIntColumn)
{
    ok("CREATE TABLE t0 (c0 INT)");
    ok("INSERT INTO t0 VALUES ('42'), ('x42')");
    ResultSet result = ok("SELECT TYPEOF(c0) FROM t0 ORDER BY c0 ASC");
    // '42' became an integer; 'x42' stayed text (and text sorts last).
    EXPECT_EQ(result.rows()[0][0].asText(), "integer");
    EXPECT_EQ(result.rows()[1][0].asText(), "text");
}

TEST_F(DatabaseTest, WhereFiltersWithNullExcluded)
{
    ok("CREATE TABLE t0 (c0 INT)");
    ok("INSERT INTO t0 VALUES (1), (2), (NULL)");
    EXPECT_EQ(ok("SELECT * FROM t0 WHERE c0 > 1").rowCount(), 1u);
    // NULL predicate rows are excluded.
    EXPECT_EQ(ok("SELECT * FROM t0 WHERE c0 <> 99").rowCount(), 2u);
}

TEST_F(DatabaseTest, InnerJoin)
{
    ok("CREATE TABLE t0 (a INT)");
    ok("CREATE TABLE t1 (b INT)");
    ok("INSERT INTO t0 VALUES (1), (2)");
    ok("INSERT INTO t1 VALUES (2), (3)");
    ResultSet result = ok(
        "SELECT * FROM t0 INNER JOIN t1 ON t0.a = t1.b");
    ASSERT_EQ(result.rowCount(), 1u);
    EXPECT_EQ(result.rows()[0][0].asInt(), 2);
}

TEST_F(DatabaseTest, LeftJoinNullExtends)
{
    ok("CREATE TABLE t0 (a INT)");
    ok("CREATE TABLE t1 (b INT)");
    ok("INSERT INTO t0 VALUES (1), (2)");
    ok("INSERT INTO t1 VALUES (2)");
    ResultSet result =
        ok("SELECT * FROM t0 LEFT JOIN t1 ON t0.a = t1.b "
           "ORDER BY t0.a ASC");
    ASSERT_EQ(result.rowCount(), 2u);
    EXPECT_TRUE(result.rows()[0][1].isNull()); // a=1 unmatched
    EXPECT_EQ(result.rows()[1][1].asInt(), 2);
}

TEST_F(DatabaseTest, RightAndFullJoin)
{
    ok("CREATE TABLE t0 (a INT)");
    ok("CREATE TABLE t1 (b INT)");
    ok("INSERT INTO t0 VALUES (1)");
    ok("INSERT INTO t1 VALUES (1), (9)");
    EXPECT_EQ(ok("SELECT * FROM t0 RIGHT JOIN t1 ON t0.a = t1.b")
                  .rowCount(),
              2u);
    ok("INSERT INTO t0 VALUES (5)");
    // FULL: 1 match + t0's 5 + t1's 9.
    EXPECT_EQ(ok("SELECT * FROM t0 FULL JOIN t1 ON t0.a = t1.b")
                  .rowCount(),
              3u);
}

TEST_F(DatabaseTest, CrossAndCommaJoin)
{
    ok("CREATE TABLE t0 (a INT)");
    ok("CREATE TABLE t1 (b INT)");
    ok("INSERT INTO t0 VALUES (1), (2)");
    ok("INSERT INTO t1 VALUES (10), (20), (30)");
    EXPECT_EQ(ok("SELECT * FROM t0 CROSS JOIN t1").rowCount(), 6u);
    EXPECT_EQ(ok("SELECT * FROM t0, t1").rowCount(), 6u);
}

TEST_F(DatabaseTest, NaturalJoinUsesCommonColumns)
{
    ok("CREATE TABLE t0 (id INT, x INT)");
    ok("CREATE TABLE t1 (id INT, y INT)");
    ok("INSERT INTO t0 VALUES (1, 100), (2, 200)");
    ok("INSERT INTO t1 VALUES (2, 999)");
    ResultSet result = ok("SELECT * FROM t0 NATURAL JOIN t1");
    ASSERT_EQ(result.rowCount(), 1u);
    EXPECT_EQ(result.rows()[0][0].asInt(), 2);
}

TEST_F(DatabaseTest, MixedCommaAndJoinRejected)
{
    ok("CREATE TABLE t0 (a INT)");
    ok("CREATE TABLE t1 (b INT)");
    ok("CREATE TABLE t2 (c INT)");
    EXPECT_EQ(
        err("SELECT * FROM t0, t1 INNER JOIN t2 ON 1").code(),
        ErrorCode::SemanticError);
}

TEST_F(DatabaseTest, DuplicateBindingRejected)
{
    ok("CREATE TABLE t0 (a INT)");
    EXPECT_EQ(err("SELECT * FROM t0, t0").code(),
              ErrorCode::SemanticError);
    // Aliases disambiguate.
    ok("SELECT * FROM t0, t0 AS other");
}

TEST_F(DatabaseTest, GroupByHaving)
{
    ok("CREATE TABLE t0 (k INT, v INT)");
    ok("INSERT INTO t0 VALUES (1, 10), (1, 20), (2, 5), (NULL, 1), "
       "(NULL, 2)");
    ResultSet result = ok(
        "SELECT k, COUNT(*), SUM(v) FROM t0 GROUP BY k "
        "ORDER BY k ASC");
    ASSERT_EQ(result.rowCount(), 3u); // NULLs form one group
    EXPECT_TRUE(result.rows()[0][0].isNull());
    EXPECT_EQ(result.rows()[0][1].asInt(), 2);
    EXPECT_EQ(result.rows()[1][2].asInt(), 30);

    ResultSet filtered = ok(
        "SELECT k FROM t0 GROUP BY k HAVING COUNT(*) > 1 "
        "ORDER BY k ASC");
    EXPECT_EQ(filtered.rowCount(), 2u);
}

TEST_F(DatabaseTest, GlobalAggregateOnEmptyInput)
{
    ok("CREATE TABLE t0 (c0 INT)");
    ResultSet result = ok("SELECT COUNT(*) FROM t0");
    ASSERT_EQ(result.rowCount(), 1u);
    EXPECT_EQ(result.rows()[0][0].asInt(), 0);
}

TEST_F(DatabaseTest, HavingWithoutGroupingRejected)
{
    ok("CREATE TABLE t0 (c0 INT)");
    EXPECT_EQ(err("SELECT c0 FROM t0 HAVING c0 > 1").code(),
              ErrorCode::SemanticError);
}

TEST_F(DatabaseTest, DistinctDedupes)
{
    ok("CREATE TABLE t0 (c0 INT)");
    ok("INSERT INTO t0 VALUES (1), (1), (2), (NULL), (NULL)");
    EXPECT_EQ(ok("SELECT DISTINCT c0 FROM t0").rowCount(), 3u);
}

TEST_F(DatabaseTest, OrderByNullsFirstAndDesc)
{
    ok("CREATE TABLE t0 (c0 INT)");
    ok("INSERT INTO t0 VALUES (2), (NULL), (1)");
    ResultSet asc = ok("SELECT c0 FROM t0 ORDER BY c0 ASC");
    EXPECT_TRUE(asc.rows()[0][0].isNull());
    EXPECT_EQ(asc.rows()[1][0].asInt(), 1);
    ResultSet desc = ok("SELECT c0 FROM t0 ORDER BY c0 DESC");
    EXPECT_EQ(desc.rows()[0][0].asInt(), 2);
    EXPECT_TRUE(desc.rows()[2][0].isNull());
}

TEST_F(DatabaseTest, LimitOffset)
{
    ok("CREATE TABLE t0 (c0 INT)");
    ok("INSERT INTO t0 VALUES (1), (2), (3), (4), (5)");
    ResultSet page =
        ok("SELECT c0 FROM t0 ORDER BY c0 ASC LIMIT 2 OFFSET 1");
    ASSERT_EQ(page.rowCount(), 2u);
    EXPECT_EQ(page.rows()[0][0].asInt(), 2);
    EXPECT_EQ(page.rows()[1][0].asInt(), 3);
    EXPECT_EQ(ok("SELECT c0 FROM t0 LIMIT 0").rowCount(), 0u);
    EXPECT_EQ(ok("SELECT c0 FROM t0 OFFSET 99").rowCount(), 0u);
}

TEST_F(DatabaseTest, ViewsExpandAndRename)
{
    ok("CREATE TABLE t0 (c0 INT)");
    ok("INSERT INTO t0 VALUES (1), (2)");
    ok("CREATE VIEW v0(renamed) AS SELECT c0 + 10 FROM t0");
    ResultSet result = ok("SELECT renamed FROM v0 ORDER BY renamed ASC");
    ASSERT_EQ(result.rowCount(), 2u);
    EXPECT_EQ(result.rows()[0][0].asInt(), 11);
    // Arity mismatch rejected at creation.
    EXPECT_EQ(err("CREATE VIEW v1(a, b) AS SELECT c0 FROM t0").code(),
              ErrorCode::SemanticError);
    // Inserting into a view fails.
    EXPECT_EQ(err("INSERT INTO v0 VALUES (1)").code(),
              ErrorCode::SemanticError);
}

TEST_F(DatabaseTest, ViewOverDroppedTableErrorsAtUse)
{
    ok("CREATE TABLE t0 (c0 INT)");
    ok("CREATE VIEW v0 AS SELECT * FROM t0");
    ok("DROP TABLE t0");
    EXPECT_EQ(err("SELECT * FROM v0").code(), ErrorCode::SemanticError);
}

TEST_F(DatabaseTest, DerivedTables)
{
    ok("CREATE TABLE t0 (c0 INT)");
    ok("INSERT INTO t0 VALUES (1), (2), (3)");
    ResultSet result = ok(
        "SELECT s.double FROM (SELECT c0 * 2 AS double FROM t0) AS s "
        "WHERE s.double > 2 ORDER BY s.double ASC");
    ASSERT_EQ(result.rowCount(), 2u);
    EXPECT_EQ(result.rows()[0][0].asInt(), 4);
}

TEST_F(DatabaseTest, ScalarSubquery)
{
    ok("CREATE TABLE t0 (c0 INT)");
    ok("INSERT INTO t0 VALUES (5)");
    EXPECT_EQ(ok("SELECT (SELECT MAX(c0) FROM t0)").rows()[0][0].asInt(),
              5);
    // Empty subquery -> NULL; multi-row -> runtime error.
    ok("CREATE TABLE empty (c0 INT)");
    EXPECT_TRUE(
        ok("SELECT (SELECT c0 FROM empty)").rows()[0][0].isNull());
    ok("INSERT INTO t0 VALUES (6)");
    EXPECT_EQ(err("SELECT (SELECT c0 FROM t0)").code(),
              ErrorCode::RuntimeError);
}

TEST_F(DatabaseTest, ExistsAndInSubqueries)
{
    ok("CREATE TABLE t0 (c0 INT)");
    ok("CREATE TABLE t1 (c0 INT)");
    ok("INSERT INTO t0 VALUES (1), (2), (3)");
    ok("INSERT INTO t1 VALUES (2), (NULL)");
    EXPECT_EQ(ok("SELECT * FROM t0 WHERE EXISTS (SELECT 1 FROM t1)")
                  .rowCount(),
              3u);
    EXPECT_EQ(
        ok("SELECT * FROM t0 WHERE c0 IN (SELECT c0 FROM t1)")
            .rowCount(),
        1u);
    // NOT IN with NULL in the subquery matches nothing.
    EXPECT_EQ(
        ok("SELECT * FROM t0 WHERE c0 NOT IN (SELECT c0 FROM t1)")
            .rowCount(),
        0u);
}

TEST_F(DatabaseTest, CorrelatedSubquery)
{
    ok("CREATE TABLE t0 (c0 INT)");
    ok("CREATE TABLE t1 (c0 INT)");
    ok("INSERT INTO t0 VALUES (1), (2), (3)");
    ok("INSERT INTO t1 VALUES (2), (3), (3)");
    ResultSet result = ok(
        "SELECT c0 FROM t0 WHERE EXISTS "
        "(SELECT 1 FROM t1 WHERE t1.c0 = t0.c0) ORDER BY c0 ASC");
    ASSERT_EQ(result.rowCount(), 2u);
    EXPECT_EQ(result.rows()[0][0].asInt(), 2);
}

TEST_F(DatabaseTest, AnalyzeComputesStats)
{
    ok("CREATE TABLE t0 (c0 INT)");
    ok("INSERT INTO t0 VALUES (1), (1), (NULL)");
    ok("ANALYZE t0");
    const StoredTable *table = db.catalog().table("t0");
    ASSERT_NE(table, nullptr);
    ASSERT_TRUE(table->analyzed);
    EXPECT_EQ(table->stats[0].distinctValues, 1u);
    EXPECT_EQ(table->stats[0].nullCount, 1u);
    ok("ANALYZE");
    EXPECT_EQ(err("ANALYZE missing").code(), ErrorCode::SemanticError);
}

TEST_F(DatabaseTest, DropStatements)
{
    ok("CREATE TABLE t0 (c0 INT)");
    ok("CREATE INDEX i0 ON t0(c0)");
    ok("CREATE VIEW v0 AS SELECT * FROM t0");
    ok("DROP VIEW v0");
    ok("DROP INDEX i0");
    ok("DROP TABLE t0");
    EXPECT_EQ(err("DROP TABLE t0").code(), ErrorCode::SemanticError);
    ok("DROP TABLE IF EXISTS t0");
}

TEST_F(DatabaseTest, IndexScansMatchFullScans)
{
    ok("CREATE TABLE t0 (c0 INT, c1 INT)");
    ok("INSERT INTO t0 VALUES (1, 1), (2, 2), (3, 3), (NULL, 4), (3, 5)");
    // Results before and after index creation must agree.
    ResultSet before = ok("SELECT * FROM t0 WHERE c0 > 1");
    ok("CREATE INDEX i0 ON t0(c0)");
    ResultSet after = ok("SELECT * FROM t0 WHERE c0 > 1");
    EXPECT_TRUE(before.sameRowMultiset(after));
    // Plan confirms the index is actually used.
    EXPECT_NE(db.lastPlanDescription().find("IDX(t0,i0,GT)"),
              std::string::npos);

    ResultSet eq = ok("SELECT * FROM t0 WHERE c0 = 3");
    EXPECT_EQ(eq.rowCount(), 2u);
    ResultSet is_null = ok("SELECT * FROM t0 WHERE c0 IS NULL");
    EXPECT_EQ(is_null.rowCount(), 1u);
    EXPECT_NE(db.lastPlanDescription().find("NULL"), std::string::npos);
}

TEST_F(DatabaseTest, UniqueIndexCreationFailsOnDuplicates)
{
    ok("CREATE TABLE t0 (c0 INT)");
    ok("INSERT INTO t0 VALUES (1), (1)");
    EXPECT_EQ(err("CREATE UNIQUE INDEX i0 ON t0(c0)").code(),
              ErrorCode::RuntimeError);
}

TEST_F(DatabaseTest, PartialIndexOnlyUsedWhenImplied)
{
    ok("CREATE TABLE t0 (c0 INT)");
    ok("INSERT INTO t0 VALUES (1), (2), (NULL)");
    ok("CREATE INDEX i0 ON t0(c0) WHERE (c0 IS NOT NULL)");
    // Query without the implying conjunct: full scan.
    ok("SELECT * FROM t0 WHERE c0 = 1");
    EXPECT_EQ(db.lastPlanDescription().find("IDX"), std::string::npos);
    // With the matching conjunct the partial index applies.
    ResultSet result = ok(
        "SELECT * FROM t0 WHERE c0 = 1 AND (c0 IS NOT NULL)");
    EXPECT_EQ(result.rowCount(), 1u);
    EXPECT_NE(db.lastPlanDescription().find("IDX(t0,i0,EQ)"),
              std::string::npos);
}

TEST_F(DatabaseTest, HashJoinChosenForEquiJoin)
{
    ok("CREATE TABLE t0 (a INT)");
    ok("CREATE TABLE t1 (b INT)");
    ok("INSERT INTO t0 VALUES (1), (2), (NULL)");
    ok("INSERT INTO t1 VALUES (2), (NULL)");
    ResultSet result = ok(
        "SELECT * FROM t0 INNER JOIN t1 ON t0.a = t1.b");
    EXPECT_EQ(result.rowCount(), 1u); // NULL keys never match
    EXPECT_NE(db.lastPlanDescription().find("HASHJ"), std::string::npos);
}

TEST_F(DatabaseTest, OptimizedMatchesReference)
{
    ok("CREATE TABLE t0 (c0 INT, c1 TEXT)");
    ok("CREATE TABLE t1 (c0 INT)");
    ok("INSERT INTO t0 VALUES (1, 'a'), (2, 'b'), (NULL, 'c')");
    ok("INSERT INTO t1 VALUES (2), (3), (NULL)");
    ok("CREATE INDEX i0 ON t0(c0)");
    const char *queries[] = {
        "SELECT * FROM t0 WHERE c0 > 1",
        "SELECT * FROM t0 WHERE c0 = 2 AND c1 <> 'z'",
        "SELECT * FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0 "
        "WHERE t0.c1 LIKE '%'",
        "SELECT * FROM t0 RIGHT JOIN t1 ON t0.c0 = t1.c0",
        "SELECT COUNT(*) FROM t0 WHERE c0 IS NULL",
        "SELECT DISTINCT c1 FROM t0 WHERE NULLIF(1, 1) IS NULL",
    };
    for (const char *sql : queries) {
        auto optimized = db.execute(sql);
        auto reference = db.executeReference(sql);
        ASSERT_TRUE(optimized.isOk()) << sql;
        ASSERT_TRUE(reference.isOk()) << sql;
        EXPECT_TRUE(
            optimized.value().sameRowMultiset(reference.value()))
            << sql;
    }
}

TEST_F(DatabaseTest, PlanFingerprintsDistinguishShapes)
{
    ok("CREATE TABLE t0 (c0 INT)");
    ok("INSERT INTO t0 VALUES (1)");
    ok("SELECT * FROM t0");
    uint64_t scan = db.lastPlanFingerprint();
    ok("SELECT * FROM t0 ORDER BY c0 ASC");
    uint64_t sorted = db.lastPlanFingerprint();
    EXPECT_NE(scan, sorted);
    ok("SELECT * FROM t0");
    EXPECT_EQ(db.lastPlanFingerprint(), scan); // stable
}

TEST_F(DatabaseTest, SelectStarWithoutFromRejected)
{
    EXPECT_EQ(err("SELECT *").code(), ErrorCode::SemanticError);
}

TEST_F(DatabaseTest, AmbiguousColumnRejected)
{
    ok("CREATE TABLE t0 (c0 INT)");
    ok("CREATE TABLE t1 (c0 INT)");
    ok("INSERT INTO t0 VALUES (1)");
    ok("INSERT INTO t1 VALUES (1)");
    EXPECT_EQ(err("SELECT c0 FROM t0, t1").code(),
              ErrorCode::SemanticError);
}

} // namespace
} // namespace sqlpp
