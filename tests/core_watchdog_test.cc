/**
 * @file
 * Campaign watchdog tests: REFRESH retry-with-backoff, wall-clock
 * shard deadlines, and the budget/oracle interaction — a fault-free
 * dialect under a starvation-level budget must report zero bugs, since
 * budget-truncated results are skipped, never compared.
 */
#include <gtest/gtest.h>

#include "core/campaign.h"

namespace sqlpp {
namespace {

const DialectProfile *
refreshDialect()
{
    for (const DialectProfile *profile : campaignDialects()) {
        if (profile->requiresRefreshAfterInsert)
            return profile;
    }
    return nullptr;
}

TEST(RefreshRetryTest, TransientFailuresAreRetriedToSuccess)
{
    const DialectProfile *profile = refreshDialect();
    ASSERT_NE(profile, nullptr);
    ConnectionOptions options;
    options.refreshRetry.maxRetries = 3;
    options.refreshRetry.backoffBaseMicros = 1;
    Connection connection(*profile, options);
    ASSERT_TRUE(
        connection.executeAdapted("CREATE TABLE t0 (c0 INT)").isOk());

    connection.injectTransientRefreshFailures(2);
    auto insert =
        connection.executeAdapted("INSERT INTO t0 VALUES (1)");
    EXPECT_TRUE(insert.isOk()) << insert.status().toString();
    EXPECT_EQ(connection.refreshRetries(), 2u);

    auto rows = connection.execute("SELECT * FROM t0");
    ASSERT_TRUE(rows.isOk());
    EXPECT_EQ(rows.value().rowCount(), 1u);
}

TEST(RefreshRetryTest, GivesUpAfterMaxRetries)
{
    const DialectProfile *profile = refreshDialect();
    ASSERT_NE(profile, nullptr);
    ConnectionOptions options;
    options.refreshRetry.maxRetries = 2;
    options.refreshRetry.backoffBaseMicros = 1;
    Connection connection(*profile, options);
    ASSERT_TRUE(
        connection.executeAdapted("CREATE TABLE t0 (c0 INT)").isOk());

    connection.injectTransientRefreshFailures(10);
    auto insert =
        connection.executeAdapted("INSERT INTO t0 VALUES (1)");
    EXPECT_FALSE(insert.isOk());
    EXPECT_EQ(connection.refreshRetries(), 2u);
}

TEST(WatchdogTest, DeadlineAbandonsTheShard)
{
    CampaignConfig config;
    config.dialect = "sqlite-like";
    config.checks = 1u << 20; // would run far past the deadline
    config.setupStatements = 20;
    config.deadlineSeconds = 0.05;
    CampaignRunner runner(config);
    CampaignStats stats = runner.run();
    EXPECT_EQ(stats.shardsAbandoned, 1u);
    EXPECT_LT(stats.checksAttempted, config.checks);
}

TEST(WatchdogTest, NoDeadlineMeansNoAbandonment)
{
    CampaignConfig config;
    config.dialect = "sqlite-like";
    config.checks = 50;
    config.setupStatements = 20;
    CampaignRunner runner(config);
    CampaignStats stats = runner.run();
    EXPECT_EQ(stats.shardsAbandoned, 0u);
}

TEST(BudgetOracleTest, FaultFreeDialectUnderTinyBudgetReportsNoBugs)
{
    // The acceptance bar for the budget/oracle contract: truncated
    // results must be skipped, never compared, so a dialect with no
    // injected faults cannot produce a single bug report no matter how
    // many statements the budget cuts short.
    CampaignConfig config;
    config.dialect = "sqlite-like";
    config.disableFaults = true;
    config.oracles = {"TLP", "NOREC"};
    config.checks = 300;
    config.setupStatements = 40;
    config.budget.maxSteps = 50;
    CampaignRunner runner(config);
    CampaignStats stats = runner.run();
    EXPECT_EQ(stats.bugsDetected, 0u);
    EXPECT_TRUE(stats.prioritizedBugs.empty());
    // The budget actually bit: a 50-step budget cannot run a whole
    // table scan plus per-row predicate evaluation.
    EXPECT_GT(stats.resourceErrors, 0u);
}

TEST(BudgetOracleTest, FaultyDialectStillFindsBugsUnderGenerousBudget)
{
    CampaignConfig config;
    config.dialect = "sqlite-like";
    config.oracles = {"TLP", "NOREC"};
    config.checks = 300;
    config.setupStatements = 40;
    config.budget.maxSteps = 1u << 20;
    CampaignRunner runner(config);
    CampaignStats stats = runner.run();
    EXPECT_GT(stats.bugsDetected, 0u);
}

} // namespace
} // namespace sqlpp
