/**
 * @file
 * Unit tests for RunningStat and the Beta-distribution helpers that back
 * the feedback mechanism's posterior computation.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace sqlpp {
namespace {

TEST(RunningStatTest, EmptyIsZero)
{
    RunningStat stat;
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
}

TEST(RunningStatTest, MeanAndVariance)
{
    RunningStat stat;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stat.add(v);
    EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
    // Sample variance with n-1 = 7: sum of squared deviations is 32.
    EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(stat.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStatTest, MinMaxTracked)
{
    RunningStat stat;
    stat.add(3.0);
    stat.add(-1.0);
    stat.add(10.0);
    EXPECT_DOUBLE_EQ(stat.min(), -1.0);
    EXPECT_DOUBLE_EQ(stat.max(), 10.0);
}

TEST(RunningStatTest, SingleSample)
{
    RunningStat stat;
    stat.add(42.0);
    EXPECT_DOUBLE_EQ(stat.mean(), 42.0);
    EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stat.min(), 42.0);
    EXPECT_DOUBLE_EQ(stat.max(), 42.0);
}

TEST(BetaTest, CdfBoundaries)
{
    EXPECT_DOUBLE_EQ(beta::cdf(2.0, 3.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(beta::cdf(2.0, 3.0, 1.0), 1.0);
}

TEST(BetaTest, UniformPriorIsLinear)
{
    // Beta(1, 1) is the uniform distribution: CDF(x) = x.
    for (double x : {0.1, 0.25, 0.5, 0.9})
        EXPECT_NEAR(beta::cdf(1.0, 1.0, x), x, 1e-9);
}

TEST(BetaTest, SymmetricAtHalf)
{
    EXPECT_NEAR(beta::cdf(5.0, 5.0, 0.5), 0.5, 1e-9);
}

TEST(BetaTest, KnownClosedForm)
{
    // Beta(1, n): CDF(x) = 1 - (1-x)^n.
    double x = 0.01;
    double n = 401.0;
    EXPECT_NEAR(beta::cdf(1.0, n, x), 1.0 - std::pow(1.0 - x, n), 1e-9);
}

TEST(BetaTest, PaperScenarioFeatureDeemedUnsupported)
{
    // Paper Section 4: y=0, N=400 gives posterior Beta(1, 401); more than
    // 95% of the mass lies below the threshold p=0.01.
    double mass_below = beta::cdf(1.0, 401.0, 0.01);
    EXPECT_GT(mass_below, 0.95);
}

TEST(BetaTest, HealthyFeatureKeepsMassAboveThreshold)
{
    // 300 successes out of 400: essentially no mass below 1%.
    double mass_below = beta::cdf(301.0, 101.0, 0.01);
    EXPECT_LT(mass_below, 1e-6);
}

TEST(BetaTest, MeanHelper)
{
    EXPECT_DOUBLE_EQ(beta::mean(1.0, 1.0), 0.5);
    EXPECT_NEAR(beta::mean(1.0, 401.0), 1.0 / 402.0, 1e-12);
}

} // namespace
} // namespace sqlpp
