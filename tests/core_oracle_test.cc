/**
 * @file
 * Oracle tests: TLP and NoREC must pass on clean engines, flag their
 * designed fault classes, and skip gracefully on dialect rejections.
 */
#include <gtest/gtest.h>

#include "core/oracle.h"
#include "parser/parser.h"

namespace sqlpp {
namespace {

/** A one-off dialect with a custom fault set and full capabilities. */
DialectProfile
testProfile(std::initializer_list<FaultId> faults)
{
    DialectProfile profile = *findDialect("postgres-like");
    profile.name = "test";
    profile.behavior.staticTyping = false; // keep predicates flexible
    for (FaultId id : faults)
        profile.faults.enable(id);
    return profile;
}

void
seed(Connection &conn)
{
    ASSERT_TRUE(conn.execute("CREATE TABLE t0 (c0 INT, c1 TEXT)").isOk());
    ASSERT_TRUE(conn.execute("INSERT INTO t0 VALUES (1, 'a'), (2, 'b'), "
                             "(3, 'c'), (NULL, 'd')")
                    .isOk());
}

OracleResult
runOracle(Oracle &oracle, Connection &conn, const std::string &base,
          const std::string &predicate)
{
    auto base_ast = parseStatement(base);
    auto pred_ast = parseExpression(predicate);
    EXPECT_TRUE(base_ast.isOk());
    EXPECT_TRUE(pred_ast.isOk());
    return oracle.check(
        conn, static_cast<const SelectStmt &>(*base_ast.value()),
        *pred_ast.value());
}

TEST(OracleFactoryTest, KnownNames)
{
    EXPECT_NE(makeOracle("TLP"), nullptr);
    EXPECT_NE(makeOracle("tlp"), nullptr);
    EXPECT_NE(makeOracle("NOREC"), nullptr);
    EXPECT_NE(makeOracle("PQS"), nullptr);
    EXPECT_NE(makeOracle("pqs"), nullptr);
    EXPECT_EQ(makeOracle("DQE"), nullptr);
}

TEST(TlpOracleTest, PassesOnCleanEngine)
{
    DialectProfile profile = testProfile({});
    Connection conn(profile);
    seed(conn);
    TlpOracle tlp;
    const char *predicates[] = {
        "t0.c0 > 1",       "t0.c0 IS NULL",       "NOT (t0.c0 = 2)",
        "t0.c1 LIKE '%a%'", "t0.c0 BETWEEN 1 AND 2",
        "t0.c0 IN (1, NULL)",
    };
    for (const char *p : predicates) {
        OracleResult result =
            runOracle(tlp, conn, "SELECT * FROM t0", p);
        EXPECT_EQ(result.outcome, OracleOutcome::Passed)
            << p << ": " << result.details;
        EXPECT_EQ(result.queries.size(), 4u);
    }
}

TEST(TlpOracleTest, CatchesNotNullFault)
{
    DialectProfile profile = testProfile({FaultId::NotNullTrue});
    Connection conn(profile);
    seed(conn);
    TlpOracle tlp;
    // NOT inside the partition flips NULL to TRUE -> partition law broken.
    OracleResult result =
        runOracle(tlp, conn, "SELECT * FROM t0", "t0.c0 > 1");
    EXPECT_EQ(result.outcome, OracleOutcome::Bug) << result.details;
}

TEST(TlpOracleTest, CatchesWhereNullFault)
{
    DialectProfile profile = testProfile({FaultId::WhereNullAsTrue});
    Connection conn(profile);
    seed(conn);
    TlpOracle tlp;
    OracleResult result =
        runOracle(tlp, conn, "SELECT * FROM t0", "t0.c0 > 1");
    EXPECT_EQ(result.outcome, OracleOutcome::Bug) << result.details;
}

TEST(TlpOracleTest, CatchesIndexFault)
{
    DialectProfile profile =
        testProfile({FaultId::IndexRangeGtIncludesEqual});
    Connection conn(profile);
    seed(conn);
    ASSERT_TRUE(conn.execute("CREATE INDEX i0 ON t0(c0)").isOk());
    TlpOracle tlp;
    OracleResult result =
        runOracle(tlp, conn, "SELECT * FROM t0", "t0.c0 > 2");
    EXPECT_EQ(result.outcome, OracleOutcome::Bug) << result.details;
}

TEST(TlpOracleTest, CatchesNegContextFault)
{
    DialectProfile profile = testProfile({FaultId::NegContextMixedEq});
    Connection conn(profile);
    seed(conn);
    ASSERT_TRUE(conn.execute("INSERT INTO t0 VALUES (7, '2')").isOk());
    TlpOracle tlp;
    // c1 = 2 flips under the NOT of the second partition.
    OracleResult result =
        runOracle(tlp, conn, "SELECT * FROM t0", "t0.c1 = 2");
    EXPECT_EQ(result.outcome, OracleOutcome::Bug) << result.details;
}

TEST(TlpOracleTest, SkipsWhenBaseFails)
{
    DialectProfile profile = testProfile({});
    Connection conn(profile);
    TlpOracle tlp;
    OracleResult result =
        runOracle(tlp, conn, "SELECT * FROM missing", "1 = 1");
    EXPECT_EQ(result.outcome, OracleOutcome::Skipped);
    EXPECT_NE(result.details.find("base query failed"),
              std::string::npos);
}

TEST(TlpOracleTest, SkipsWhenPartitionFails)
{
    DialectProfile profile = testProfile({});
    profile.behavior.divZeroIsNull = false;
    Connection conn(profile);
    seed(conn);
    TlpOracle tlp;
    OracleResult result =
        runOracle(tlp, conn, "SELECT * FROM t0", "(1 / 0) = 1");
    EXPECT_EQ(result.outcome, OracleOutcome::Skipped);
}

TEST(NorecOracleTest, PassesOnCleanEngine)
{
    DialectProfile profile = testProfile({});
    Connection conn(profile);
    seed(conn);
    ASSERT_TRUE(conn.execute("CREATE INDEX i0 ON t0(c0)").isOk());
    NorecOracle norec;
    const char *predicates[] = {
        "t0.c0 > 1", "t0.c0 = 2", "t0.c0 IS NULL", "t0.c0 < 3",
        "t0.c1 LIKE '_'",
    };
    for (const char *p : predicates) {
        OracleResult result =
            runOracle(norec, conn, "SELECT * FROM t0", p);
        EXPECT_EQ(result.outcome, OracleOutcome::Passed)
            << p << ": " << result.details;
    }
}

TEST(NorecOracleTest, CatchesIndexFaults)
{
    struct Case { FaultId fault; const char *predicate; };
    const Case cases[] = {
        {FaultId::IndexRangeGtIncludesEqual, "t0.c0 > 2"},
        {FaultId::IndexRangeLtIncludesEqual, "t0.c0 < 2"},
        {FaultId::IndexSkipsNull, "t0.c0 IS NULL"},
        {FaultId::IndexEqTextCoerce, "t0.c0 = '2'"},
    };
    for (const Case &c : cases) {
        DialectProfile profile = testProfile({c.fault});
        Connection conn(profile);
        seed(conn);
        ASSERT_TRUE(conn.execute("CREATE INDEX i0 ON t0(c0)").isOk());
        NorecOracle norec;
        OracleResult result =
            runOracle(norec, conn, "SELECT * FROM t0", c.predicate);
        EXPECT_EQ(result.outcome, OracleOutcome::Bug)
            << faultName(c.fault) << ": " << result.details;
    }
}

TEST(NorecOracleTest, CatchesConstFoldFault)
{
    DialectProfile profile =
        testProfile({FaultId::ConstFoldNullifIdentity});
    Connection conn(profile);
    seed(conn);
    NorecOracle norec;
    OracleResult result =
        runOracle(norec, conn, "SELECT * FROM t0", "NULLIF(2, 2)");
    EXPECT_EQ(result.outcome, OracleOutcome::Bug) << result.details;
}

TEST(NorecOracleTest, CatchesIsTrueFault)
{
    DialectProfile profile = testProfile({FaultId::IsTrueFalseTrue});
    Connection conn(profile);
    seed(conn);
    NorecOracle norec;
    OracleResult result =
        runOracle(norec, conn, "SELECT * FROM t0", "t0.c0 > 99");
    EXPECT_EQ(result.outcome, OracleOutcome::Bug) << result.details;
}

TEST(NorecOracleTest, EvaluatorFaultsInvisible)
{
    // NOT/IS NULL faults hit both the counting and the reference sides
    // identically; NoREC must stay silent (that is TLP's territory).
    DialectProfile profile =
        testProfile({FaultId::NotNullTrue, FaultId::WhereNullAsTrue});
    Connection conn(profile);
    seed(conn);
    NorecOracle norec;
    OracleResult result =
        runOracle(norec, conn, "SELECT * FROM t0", "t0.c0 > 1");
    // WhereNullAsTrue inflates the COUNT side: actually visible.
    // NOT-based faults alone are not: check with a NOT-free predicate
    // on a profile with only NotNullTrue.
    DialectProfile only_not = testProfile({FaultId::NotNullTrue});
    Connection conn2(only_not);
    ASSERT_TRUE(
        conn2.execute("CREATE TABLE t0 (c0 INT, c1 TEXT)").isOk());
    ASSERT_TRUE(
        conn2.execute("INSERT INTO t0 VALUES (1, 'a'), (NULL, 'b')")
            .isOk());
    OracleResult quiet =
        runOracle(norec, conn2, "SELECT * FROM t0", "t0.c0 > 0");
    EXPECT_EQ(quiet.outcome, OracleOutcome::Passed) << quiet.details;
}

TEST(NorecOracleTest, FallsBackWithoutIsTrue)
{
    // cubrid-like rejects IS TRUE; NoREC must fall back to CASE.
    const DialectProfile *cubrid = findDialect("cubrid-like");
    ASSERT_NE(cubrid, nullptr);
    Connection conn(*cubrid);
    ASSERT_TRUE(conn.execute("CREATE TABLE t0 (c0 INT)").isOk());
    ASSERT_TRUE(
        conn.execute("INSERT INTO t0 VALUES (1)").isOk());
    NorecOracle norec;
    OracleResult result =
        runOracle(norec, conn, "SELECT * FROM t0", "t0.c0 > 0");
    EXPECT_EQ(result.outcome, OracleOutcome::Passed) << result.details;
    // The full statement list is recorded, including the IS TRUE probe
    // that the dialect rejected before the CASE fallback ran.
    ASSERT_EQ(result.queries.size(), 3u);
    EXPECT_NE(result.queries[1].find("IS TRUE"), std::string::npos);
    EXPECT_NE(result.queries[2].find("CASE"), std::string::npos);
}

TEST(OracleListingsTest, Listing3StyleReplaceBug)
{
    // Paper Listing 3 on the sqlite-like dialect: the context-dependent
    // mixed-type comparison behind the REPLACE bug.
    const DialectProfile *sqlite = findDialect("sqlite-like");
    Connection conn(*sqlite);
    ASSERT_TRUE(conn.execute("CREATE TABLE t0 (c0 TEXT)").isOk());
    ASSERT_TRUE(conn.execute("INSERT INTO t0 (c0) VALUES (1)").isOk());
    TlpOracle tlp;
    OracleResult result = runOracle(
        tlp, conn, "SELECT * FROM t0", "t0.c0 = REPLACE(1, '', 0)");
    EXPECT_EQ(result.outcome, OracleOutcome::Bug) << result.details;
}

TEST(OracleListingsTest, Listing4StyleRightJoinBug)
{
    // Paper Listing 4: ON -> WHERE flattening on RIGHT JOIN, visible to
    // both oracles through the join result.
    const DialectProfile *sqlite = findDialect("sqlite-like");
    Connection conn(*sqlite);
    ASSERT_TRUE(conn.execute("CREATE TABLE t0 (c0 INT)").isOk());
    ASSERT_TRUE(conn.execute("CREATE TABLE t1 (c0 INT)").isOk());
    ASSERT_TRUE(conn.execute("INSERT INTO t0 VALUES (1)").isOk());
    ASSERT_TRUE(conn.execute("INSERT INTO t1 VALUES (1), (9)").isOk());
    NorecOracle norec;
    OracleResult result = runOracle(
        norec, conn,
        "SELECT * FROM t0 RIGHT JOIN t1 ON (t0.c0 = t1.c0)", "TRUE");
    EXPECT_EQ(result.outcome, OracleOutcome::Bug) << result.details;
}

} // namespace
} // namespace sqlpp
