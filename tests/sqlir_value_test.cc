/**
 * @file
 * Unit tests for Value, DataType, and ResultSet multiset comparison.
 */
#include <gtest/gtest.h>

#include "sqlir/value.h"

namespace sqlpp {
namespace {

TEST(DataTypeTest, Names)
{
    EXPECT_STREQ(dataTypeName(DataType::Int), "INTEGER");
    EXPECT_STREQ(dataTypeName(DataType::Text), "TEXT");
    EXPECT_STREQ(dataTypeName(DataType::Bool), "BOOLEAN");
}

TEST(DataTypeTest, ParseAliases)
{
    DataType type;
    EXPECT_TRUE(parseDataType("int", type));
    EXPECT_EQ(type, DataType::Int);
    EXPECT_TRUE(parseDataType("VARCHAR", type));
    EXPECT_EQ(type, DataType::Text);
    EXPECT_TRUE(parseDataType("Bool", type));
    EXPECT_EQ(type, DataType::Bool);
    EXPECT_FALSE(parseDataType("BLOB", type));
}

TEST(ValueTest, DefaultIsNull)
{
    Value v;
    EXPECT_TRUE(v.isNull());
    EXPECT_EQ(v.kind(), Value::Kind::Null);
}

TEST(ValueTest, FactoriesAndAccessors)
{
    EXPECT_EQ(Value::integer(42).asInt(), 42);
    EXPECT_EQ(Value::text("x").asText(), "x");
    EXPECT_TRUE(Value::boolean(true).asBool());
    EXPECT_EQ(Value::integer(-1).kind(), Value::Kind::Int);
    EXPECT_EQ(Value::text("").kind(), Value::Kind::Text);
    EXPECT_EQ(Value::boolean(false).kind(), Value::Kind::Bool);
}

TEST(ValueTest, ToStringAndLiteral)
{
    EXPECT_EQ(Value::null().toString(), "NULL");
    EXPECT_EQ(Value::integer(7).toString(), "7");
    EXPECT_EQ(Value::text("hi").toString(), "hi");
    EXPECT_EQ(Value::boolean(true).toString(), "TRUE");

    EXPECT_EQ(Value::null().literal(), "NULL");
    EXPECT_EQ(Value::text("it's").literal(), "'it''s'");
    EXPECT_EQ(Value::boolean(false).literal(), "FALSE");
}

TEST(ValueTest, TotalOrderAcrossKinds)
{
    // NULL < BOOL < INT < TEXT.
    EXPECT_LT(Value::null().compareTotal(Value::boolean(false)), 0);
    EXPECT_LT(Value::boolean(true).compareTotal(Value::integer(0)), 0);
    EXPECT_LT(Value::integer(999).compareTotal(Value::text("")), 0);
}

TEST(ValueTest, TotalOrderWithinKinds)
{
    EXPECT_EQ(Value::null().compareTotal(Value::null()), 0);
    EXPECT_LT(Value::boolean(false).compareTotal(Value::boolean(true)), 0);
    EXPECT_LT(Value::integer(-5).compareTotal(Value::integer(3)), 0);
    EXPECT_GT(Value::text("b").compareTotal(Value::text("a")), 0);
    EXPECT_EQ(Value::text("a").compareTotal(Value::text("a")), 0);
}

TEST(ValueTest, HashDistinguishesKinds)
{
    // 1, '1', and TRUE must hash differently (result comparison depends
    // on it).
    EXPECT_NE(Value::integer(1).hash(), Value::text("1").hash());
    EXPECT_NE(Value::integer(1).hash(), Value::boolean(true).hash());
    EXPECT_EQ(Value::integer(1).hash(), Value::integer(1).hash());
}

TEST(ResultSetTest, MultisetEqualityIgnoresOrder)
{
    ResultSet a({"c0"});
    a.addRow({Value::integer(1)});
    a.addRow({Value::integer(2)});
    ResultSet b({"x"});
    b.addRow({Value::integer(2)});
    b.addRow({Value::integer(1)});
    EXPECT_TRUE(a.sameRowMultiset(b));
}

TEST(ResultSetTest, MultisetRespectsDuplicateCounts)
{
    ResultSet a({"c0"});
    a.addRow({Value::integer(1)});
    a.addRow({Value::integer(1)});
    ResultSet b({"c0"});
    b.addRow({Value::integer(1)});
    EXPECT_FALSE(a.sameRowMultiset(b));
    b.addRow({Value::integer(1)});
    EXPECT_TRUE(a.sameRowMultiset(b));
}

TEST(ResultSetTest, MultisetDistinguishesNullFromZero)
{
    ResultSet a({"c0"});
    a.addRow({Value::null()});
    ResultSet b({"c0"});
    b.addRow({Value::integer(0)});
    EXPECT_FALSE(a.sameRowMultiset(b));
}

TEST(ResultSetTest, AbsorbUnionsRows)
{
    ResultSet a({"c0"});
    a.addRow({Value::integer(1)});
    ResultSet b({"c0"});
    b.addRow({Value::integer(2)});
    a.absorb(b);
    EXPECT_EQ(a.rowCount(), 2u);
}

TEST(ResultSetTest, FingerprintOrderInsensitive)
{
    ResultSet a({"c0", "c1"});
    a.addRow({Value::integer(1), Value::text("x")});
    a.addRow({Value::null(), Value::boolean(true)});
    ResultSet b({"c0", "c1"});
    b.addRow({Value::null(), Value::boolean(true)});
    b.addRow({Value::integer(1), Value::text("x")});
    EXPECT_EQ(a.multisetFingerprint(), b.multisetFingerprint());
}

TEST(ResultSetTest, ToStringTruncates)
{
    ResultSet rs({"c0"});
    for (int i = 0; i < 20; ++i)
        rs.addRow({Value::integer(i)});
    std::string rendered = rs.toString(4);
    EXPECT_NE(rendered.find("20 rows total"), std::string::npos);
}

} // namespace
} // namespace sqlpp
