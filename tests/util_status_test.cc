/**
 * @file
 * Unit tests for Status / StatusOr error propagation.
 */
#include <gtest/gtest.h>

#include "util/status.h"

namespace sqlpp {
namespace {

TEST(StatusTest, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.isOk());
    EXPECT_EQ(s.code(), ErrorCode::Ok);
    EXPECT_EQ(s.toString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage)
{
    EXPECT_EQ(Status::syntaxError("x").code(), ErrorCode::SyntaxError);
    EXPECT_EQ(Status::semanticError("x").code(), ErrorCode::SemanticError);
    EXPECT_EQ(Status::runtimeError("x").code(), ErrorCode::RuntimeError);
    EXPECT_EQ(Status::unsupported("x").code(), ErrorCode::Unsupported);
    EXPECT_EQ(Status::internal("x").code(), ErrorCode::Internal);
    EXPECT_EQ(Status::syntaxError("boom").message(), "boom");
}

TEST(StatusTest, ToStringIncludesCodeName)
{
    Status s = Status::semanticError("no such table t9");
    EXPECT_EQ(s.toString(), "SEMANTIC_ERROR: no such table t9");
}

TEST(StatusTest, ErrorCodeNames)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::Ok), "OK");
    EXPECT_STREQ(errorCodeName(ErrorCode::SyntaxError), "SYNTAX_ERROR");
    EXPECT_STREQ(errorCodeName(ErrorCode::RuntimeError), "RUNTIME_ERROR");
    EXPECT_STREQ(errorCodeName(ErrorCode::Internal), "INTERNAL");
}

TEST(StatusOrTest, HoldsValue)
{
    StatusOr<int> result(42);
    ASSERT_TRUE(result.isOk());
    EXPECT_EQ(result.value(), 42);
}

TEST(StatusOrTest, HoldsError)
{
    StatusOr<int> result(Status::runtimeError("bad"));
    EXPECT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::RuntimeError);
}

TEST(StatusOrTest, TakeValueMoves)
{
    StatusOr<std::string> result(std::string("hello"));
    std::string taken = result.takeValue();
    EXPECT_EQ(taken, "hello");
}

TEST(StatusOrTest, MoveOnlyPayload)
{
    StatusOr<std::unique_ptr<int>> result(std::make_unique<int>(5));
    ASSERT_TRUE(result.isOk());
    std::unique_ptr<int> p = result.takeValue();
    EXPECT_EQ(*p, 5);
}

} // namespace
} // namespace sqlpp
