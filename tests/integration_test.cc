/**
 * @file
 * Cross-module integration and property tests:
 *
 *  - generator-driven differential testing of the engine itself (on a
 *    fault-free engine, optimized and reference pipelines must agree on
 *    every generated query — the same technique the platform applies to
 *    its targets, turned inward);
 *  - a fault-detectability matrix: every non-latent injected fault is
 *    found by at least one oracle in a targeted single-fault campaign;
 *  - a campaign smoke sweep across all 17 dialects.
 */
#include <gtest/gtest.h>

#include "core/campaign.h"
#include "core/oracle.h"
#include "sqlir/printer.h"
#include "engine/database.h"
#include "parser/parser.h"

namespace sqlpp {
namespace {

/**
 * Property: with no faults, the optimizing pipeline agrees with the
 * reference pipeline on arbitrary generated queries (parameterized over
 * seeds for independent generation streams).
 */
class EngineDifferentialTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(EngineDifferentialTest, OptimizedAgreesWithReference)
{
    FeatureRegistry registry;
    OpenGate gate;
    SchemaModel model;
    GeneratorConfig config;
    config.seed = GetParam();
    AdaptiveGenerator generator(config, registry, gate, model);
    Database db; // no faults, dynamic typing

    for (int i = 0; i < 60; ++i) {
        GeneratedStatement stmt = generator.generateSetupStatement();
        auto result = db.execute(stmt.text);
        generator.noteExecution(stmt, result.isOk());
    }
    int compared = 0;
    for (int i = 0; i < 150; ++i) {
        GeneratedStatement stmt = generator.generateSelect();
        auto optimized = db.execute(stmt.text);
        auto reference = db.executeReference(stmt.text);
        ASSERT_EQ(optimized.isOk(), reference.isOk())
            << stmt.text << "\nopt: " << optimized.status().toString()
            << "\nref: " << reference.status().toString();
        if (!optimized.isOk())
            continue;
        ++compared;
        // ORDER BY only fixes the order of equal-multiset results; use
        // the multiset view for both.
        EXPECT_TRUE(
            optimized.value().sameRowMultiset(reference.value()))
            << stmt.text;
    }
    EXPECT_GT(compared, 50);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDifferentialTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

/**
 * Property: shapes generated for the oracles replay deterministically —
 * printing and re-parsing a shape yields identical text (the reducer and
 * the replay path both depend on this).
 */
TEST(ShapeRoundTripTest, PrintParsePrintIsStable)
{
    FeatureRegistry registry;
    OpenGate gate;
    SchemaModel model;
    GeneratorConfig config;
    config.seed = 5;
    AdaptiveGenerator generator(config, registry, gate, model);
    for (int i = 0; i < 30; ++i)
        generator.noteExecution(generator.generateSetupStatement(), true);
    int checked = 0;
    for (int i = 0; i < 100; ++i) {
        auto shape = generator.generateQueryShape();
        if (!shape.has_value())
            continue;
        ++checked;
        std::string base_text = printSelect(*shape->base);
        std::string pred_text = printExpr(*shape->predicate);
        auto base2 = parseStatement(base_text);
        auto pred2 = parseExpression(pred_text);
        ASSERT_TRUE(base2.isOk()) << base_text;
        ASSERT_TRUE(pred2.isOk()) << pred_text;
        EXPECT_EQ(printStmt(*base2.value()), base_text);
        EXPECT_EQ(printExpr(*pred2.value()), pred_text);
    }
    EXPECT_GT(checked, 60);
}

/**
 * Oracle fault matrix: for every oracle-visible fault there is a
 * crafted scenario its designed oracle flags deterministically; latent
 * faults stay silent even under a random campaign. (Whether *random*
 * search finds a given fault in N checks is stochastic and exercised by
 * the campaign tests and benches instead.)
 */
struct FaultScenario
{
    FaultId fault;
    const char *oracle;
    std::vector<const char *> setup;
    const char *base;
    const char *predicate;
    bool distinct = false;
};

class OracleFaultMatrixTest
    : public ::testing::TestWithParam<FaultScenario>
{
};

TEST_P(OracleFaultMatrixTest, CraftedScenarioIsFlagged)
{
    const FaultScenario &scenario = GetParam();
    DialectProfile profile = *findDialect("sqlite-like");
    profile.name = "single-fault";
    profile.faults = FaultSet{};
    profile.faults.enable(scenario.fault);
    Connection connection(profile);
    for (const char *statement : scenario.setup)
        ASSERT_TRUE(connection.execute(statement).isOk()) << statement;
    auto base = parseStatement(scenario.base);
    auto predicate = parseExpression(scenario.predicate);
    ASSERT_TRUE(base.isOk());
    ASSERT_TRUE(predicate.isOk());
    auto *select = static_cast<SelectStmt *>(base.value().get());
    select->distinct = scenario.distinct;
    auto oracle = makeOracle(scenario.oracle);
    OracleResult result =
        oracle->check(connection, *select, *predicate.value());
    EXPECT_EQ(result.outcome, OracleOutcome::Bug)
        << faultName(scenario.fault) << ": " << result.details;

    // Control: a clean engine must pass the same scenario (no oracle
    // false positive).
    DialectProfile clean = profile;
    clean.faults = FaultSet{};
    Connection clean_connection(clean);
    for (const char *statement : scenario.setup) {
        ASSERT_TRUE(clean_connection.execute(statement).isOk())
            << statement;
    }
    OracleResult clean_result =
        oracle->check(clean_connection, *select, *predicate.value());
    EXPECT_EQ(clean_result.outcome, OracleOutcome::Passed)
        << faultName(scenario.fault) << ": " << clean_result.details;
}

const std::vector<const char *> kIndexedSetup = {
    "CREATE TABLE t0 (c0 INT)",
    "INSERT INTO t0 VALUES (1), (2), (3), (NULL)",
    "CREATE INDEX i0 ON t0(c0)",
};
const std::vector<const char *> kJoinSetup = {
    "CREATE TABLE t0 (c0 INT)",
    "CREATE TABLE t1 (c0 INT)",
    "INSERT INTO t0 VALUES (1), (2), (NULL)",
    "INSERT INTO t1 VALUES (2), (9)",
};

INSTANTIATE_TEST_SUITE_P(
    CraftedScenarios, OracleFaultMatrixTest,
    ::testing::Values(
        FaultScenario{FaultId::IndexRangeGtIncludesEqual, "NOREC",
                      kIndexedSetup, "SELECT * FROM t0", "(t0.c0 > 2)"},
        FaultScenario{FaultId::IndexRangeGtIncludesEqual, "TLP",
                      kIndexedSetup, "SELECT * FROM t0", "(t0.c0 > 2)"},
        FaultScenario{FaultId::IndexRangeLtIncludesEqual, "TLP",
                      kIndexedSetup, "SELECT * FROM t0", "(t0.c0 < 2)"},
        FaultScenario{FaultId::IndexSkipsNull, "NOREC", kIndexedSetup,
                      "SELECT * FROM t0", "(t0.c0 IS NULL)"},
        FaultScenario{FaultId::IndexEqTextCoerce, "NOREC",
                      kIndexedSetup, "SELECT * FROM t0",
                      "(t0.c0 = '2')"},
        FaultScenario{FaultId::PartialIndexIgnoresPredicate, "NOREC",
                      {"CREATE TABLE t0 (c0 INT)",
                       "INSERT INTO t0 VALUES (1), (2), (3)",
                       "CREATE INDEX i0 ON t0(c0) WHERE (c0 > 2)"},
                      "SELECT * FROM t0", "(t0.c0 = 1)"},
        FaultScenario{FaultId::PushdownThroughOuterJoin, "TLP",
                      kJoinSetup,
                      "SELECT * FROM t0 LEFT JOIN t1 ON "
                      "(t0.c0 = t1.c0)",
                      "(t1.c0 IS NULL)"},
        FaultScenario{FaultId::OnToWhereRightJoin, "NOREC", kJoinSetup,
                      "SELECT * FROM t0 RIGHT JOIN t1 ON "
                      "(t0.c0 = t1.c0)",
                      "TRUE"},
        FaultScenario{FaultId::ConstFoldNullifIdentity, "NOREC",
                      kIndexedSetup, "SELECT * FROM t0",
                      "NULLIF(2, 2)"},
        FaultScenario{FaultId::NotNullTrue, "TLP", kIndexedSetup,
                      "SELECT * FROM t0", "(t0.c0 > 1)"},
        FaultScenario{FaultId::IsNullFalseForBoolNull, "TLP",
                      kIndexedSetup, "SELECT * FROM t0",
                      "(t0.c0 > 1)"},
        FaultScenario{FaultId::WhereNullAsTrue, "TLP", kIndexedSetup,
                      "SELECT * FROM t0", "(t0.c0 > 1)"},
        FaultScenario{FaultId::NegContextMixedEq, "TLP",
                      {"CREATE TABLE t0 (c0 TEXT)",
                       "INSERT INTO t0 VALUES ('1'), ('x')"},
                      "SELECT * FROM t0", "(t0.c0 = 1)"},
        FaultScenario{FaultId::IsTrueFalseTrue, "NOREC", kIndexedSetup,
                      "SELECT * FROM t0", "(t0.c0 > 99)"},
        FaultScenario{FaultId::DistinctNullCollapse, "TLP",
                      {"CREATE TABLE t0 (a INT, b INT)",
                       "INSERT INTO t0 VALUES (1, NULL), (NULL, 2), "
                       "(3, 3)"},
                      // The predicate splits the two NULL-bearing rows
                      // into different partitions, so the faulty
                      // engine-side collapse cannot cancel out.
                      "SELECT * FROM t0", "(t0.a IS NOT NULL)",
                      /*distinct=*/true}),
    [](const ::testing::TestParamInfo<FaultScenario> &info) {
        return std::string(faultName(info.param.fault)) + "_" +
               info.param.oracle + "_" +
               std::to_string(info.index);
    });

/**
 * Latent faults: invisible to both shipped oracles even under a random
 * campaign (they model the paper's "bug-finding has not saturated").
 */
class LatentFaultTest : public ::testing::TestWithParam<FaultId>
{
};

TEST_P(LatentFaultTest, StaysInvisibleToShippedOracles)
{
    FaultId fault = GetParam();
    DialectProfile profile = *findDialect("sqlite-like");
    profile.name = "latent-fault";
    profile.faults = FaultSet{};
    profile.faults.enable(fault);
    FeatureRegistry registry;
    OpenGate gate;
    SchemaModel model;
    GeneratorConfig config;
    config.seed = 515151;
    AdaptiveGenerator generator(config, registry, gate, model);
    Connection connection(profile);
    for (int i = 0; i < 70; ++i) {
        GeneratedStatement stmt = generator.generateSetupStatement();
        bool ok = connection.executeAdapted(stmt.text).isOk();
        generator.noteExecution(stmt, ok);
    }
    auto tlp = makeOracle("TLP");
    auto norec = makeOracle("NOREC");
    size_t bugs = 0;
    for (int i = 0; i < 250; ++i) {
        auto shape = generator.generateQueryShape();
        if (!shape.has_value())
            continue;
        for (Oracle *oracle : {tlp.get(), norec.get()}) {
            OracleResult result = oracle->check(
                connection, *shape->base, *shape->predicate);
            bugs += result.outcome == OracleOutcome::Bug ? 1 : 0;
        }
    }
    EXPECT_EQ(bugs, 0u) << faultName(fault);
}

INSTANTIATE_TEST_SUITE_P(
    Latent, LatentFaultTest,
    ::testing::Values(FaultId::NullSafeEqBothNullFalse,
                      FaultId::SumEmptyZero,
                      FaultId::GroupByNullSeparate,
                      FaultId::LikeUnderscoreLiteral,
                      FaultId::ReplaceNumericSubject),
    [](const ::testing::TestParamInfo<FaultId> &info) {
        return faultName(info.param);
    });

/** Campaign smoke across every campaign dialect. */
class DialectCampaignSmokeTest
    : public ::testing::TestWithParam<const DialectProfile *>
{
};

TEST_P(DialectCampaignSmokeTest, RunsAndBehaves)
{
    const DialectProfile *profile = GetParam();
    CampaignConfig config;
    config.dialect = profile->name;
    config.seed = 271828;
    config.checks = 250;
    config.setupStatements = 60;
    config.oracles = {"TLP", "NOREC"};
    CampaignRunner runner(config);
    CampaignStats stats = runner.run();
    EXPECT_GT(stats.setupSucceeded, 0u) << profile->name;
    EXPECT_GT(stats.checksAttempted, 0u) << profile->name;
    EXPECT_GT(stats.planFingerprints.size(), 0u) << profile->name;
    // Prioritization never inflates.
    EXPECT_LE(stats.prioritizedBugs.size(), stats.bugsDetected)
        << profile->name;
    // Every prioritized case carries a reproducer and metadata.
    for (const BugCase &bug : stats.prioritizedBugs) {
        EXPECT_FALSE(bug.setup.empty());
        EXPECT_FALSE(bug.baseText.empty());
        EXPECT_FALSE(bug.predicateText.empty());
        EXPECT_FALSE(bug.featureNames.empty());
        EXPECT_EQ(bug.dialect, profile->name);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllDialects, DialectCampaignSmokeTest,
    ::testing::ValuesIn(campaignDialects()),
    [](const ::testing::TestParamInfo<const DialectProfile *> &info) {
        std::string name = info.param->name;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace sqlpp
