/**
 * @file
 * PQS oracle tests: pivot selection, the rectification property
 * (client-side evaluation of the rectified predicate on the pivot is
 * always TRUE), applicability boundaries, containment detection of the
 * latent faults TLP and NoREC are structurally blind to, and silence on
 * the fault-free reference dialect.
 */
#include <gtest/gtest.h>

#include "core/campaign.h"
#include "core/oracle.h"
#include "core/pivot.h"
#include "parser/parser.h"
#include "sqlir/printer.h"
#include "util/rng.h"

namespace sqlpp {
namespace {

/** A one-off dialect with a custom fault set and full capabilities. */
DialectProfile
testProfile(std::initializer_list<FaultId> faults)
{
    DialectProfile profile = *findDialect("postgres-like");
    profile.name = "test";
    profile.behavior.staticTyping = false; // keep predicates flexible
    // postgres-like drops <=>; the null-safe-equality fault needs it.
    profile.binaryOps.insert(BinaryOp::NullSafeEq);
    for (FaultId id : faults)
        profile.faults.enable(id);
    return profile;
}

void
seed(Connection &conn)
{
    ASSERT_TRUE(conn.execute("CREATE TABLE t0 (c0 INT, c1 TEXT)").isOk());
    ASSERT_TRUE(conn.execute("INSERT INTO t0 VALUES (1, 'a'), (2, 'b'), "
                             "(3, 'c'), (NULL, 'd')")
                    .isOk());
}

OracleResult
runOracle(Oracle &oracle, Connection &conn, const std::string &base,
          const std::string &predicate)
{
    auto base_ast = parseStatement(base);
    auto pred_ast = parseExpression(predicate);
    EXPECT_TRUE(base_ast.isOk());
    EXPECT_TRUE(pred_ast.isOk());
    return oracle.check(
        conn, static_cast<const SelectStmt &>(*base_ast.value()),
        *pred_ast.value());
}

TEST(PqsOracleTest, PassesOnCleanEngine)
{
    DialectProfile profile = testProfile({});
    Connection conn(profile);
    seed(conn);
    PqsOracle pqs;
    const char *predicates[] = {
        "t0.c0 > 1",        "t0.c0 IS NULL",  "NOT (t0.c0 = 2)",
        "t0.c1 LIKE '%a%'", "t0.c0 BETWEEN 1 AND 2",
        "t0.c0 IN (1, NULL)", "t0.c0 + 1 = 3",
    };
    for (const char *p : predicates) {
        OracleResult result =
            runOracle(pqs, conn, "SELECT * FROM t0", p);
        EXPECT_EQ(result.outcome, OracleOutcome::Passed)
            << p << ": " << result.details;
        // A PQS check is exactly two statements: scan + containment.
        EXPECT_EQ(result.queries.size(), 2u);
    }
}

TEST(PqsOracleTest, InapplicableOutsideItsDomain)
{
    DialectProfile profile = testProfile({});
    Connection conn(profile);
    seed(conn);
    ASSERT_TRUE(conn.execute("CREATE TABLE t1 (c0 INT)").isOk());
    ASSERT_TRUE(conn.execute("CREATE TABLE empty0 (c0 INT)").isOk());
    PqsOracle pqs;

    // Joins: no single pivot source.
    OracleResult join = runOracle(
        pqs, conn, "SELECT * FROM t0 INNER JOIN t1 ON (t0.c0 = t1.c0)",
        "t0.c0 > 1");
    EXPECT_EQ(join.outcome, OracleOutcome::Inapplicable);

    // Subquery in the predicate: the client-side evaluator is
    // deliberately standalone.
    OracleResult sub = runOracle(
        pqs, conn, "SELECT * FROM t0",
        "EXISTS (SELECT * FROM t1)");
    EXPECT_EQ(sub.outcome, OracleOutcome::Inapplicable);

    // Empty source: no row to pivot on.
    OracleResult empty =
        runOracle(pqs, conn, "SELECT * FROM empty0", "empty0.c0 > 0");
    EXPECT_EQ(empty.outcome, OracleOutcome::Inapplicable);
}

TEST(PqsOracleTest, SkipsWhenScanFails)
{
    DialectProfile profile = testProfile({});
    Connection conn(profile);
    PqsOracle pqs;
    OracleResult result =
        runOracle(pqs, conn, "SELECT * FROM missing", "1 = 1");
    EXPECT_EQ(result.outcome, OracleOutcome::Skipped);
    EXPECT_NE(result.details.find("pivot scan failed"),
              std::string::npos);
}

TEST(PqsOracleTest, CatchesRowLossIndexFault)
{
    // IndexSkipsNull loses rows under `col IS NULL` — a containment
    // violation when the pivot row has a NULL key.
    DialectProfile profile = testProfile({FaultId::IndexSkipsNull});
    Connection conn(profile);
    ASSERT_TRUE(conn.execute("CREATE TABLE t0 (c0 INT)").isOk());
    ASSERT_TRUE(
        conn.execute("INSERT INTO t0 VALUES (NULL), (NULL)").isOk());
    ASSERT_TRUE(conn.execute("CREATE INDEX i0 ON t0(c0)").isOk());
    PqsOracle pqs;
    OracleResult result =
        runOracle(pqs, conn, "SELECT * FROM t0", "t0.c0 IS NULL");
    EXPECT_EQ(result.outcome, OracleOutcome::Bug) << result.details;
    EXPECT_NE(result.details.find("containment violation"),
              std::string::npos);
}

TEST(PqsOracleTest, CatchesLatentNullSafeEqFault)
{
    // <=> with two NULLs returning FALSE deviates identically in every
    // TLP partition and on both NoREC sides; only the clean client-side
    // reference disagrees with the server.
    DialectProfile profile =
        testProfile({FaultId::NullSafeEqBothNullFalse});
    Connection conn(profile);
    ASSERT_TRUE(conn.execute("CREATE TABLE t0 (c0 INT)").isOk());
    ASSERT_TRUE(
        conn.execute("INSERT INTO t0 VALUES (NULL), (NULL)").isOk());

    PqsOracle pqs;
    OracleResult bug =
        runOracle(pqs, conn, "SELECT * FROM t0", "t0.c0 <=> NULL");
    EXPECT_EQ(bug.outcome, OracleOutcome::Bug) << bug.details;

    TlpOracle tlp;
    EXPECT_EQ(runOracle(tlp, conn, "SELECT * FROM t0", "t0.c0 <=> NULL")
                  .outcome,
              OracleOutcome::Passed);
    NorecOracle norec;
    EXPECT_EQ(
        runOracle(norec, conn, "SELECT * FROM t0", "t0.c0 <=> NULL")
            .outcome,
        OracleOutcome::Passed);
}

TEST(PqsOracleTest, CatchesLatentLikeUnderscoreFault)
{
    DialectProfile profile =
        testProfile({FaultId::LikeUnderscoreLiteral});
    Connection conn(profile);
    ASSERT_TRUE(conn.execute("CREATE TABLE t0 (c0 TEXT)").isOk());
    ASSERT_TRUE(conn.execute("INSERT INTO t0 VALUES ('ab')").isOk());

    PqsOracle pqs;
    OracleResult bug =
        runOracle(pqs, conn, "SELECT * FROM t0", "t0.c0 LIKE '_b'");
    EXPECT_EQ(bug.outcome, OracleOutcome::Bug) << bug.details;

    TlpOracle tlp;
    EXPECT_EQ(runOracle(tlp, conn, "SELECT * FROM t0",
                        "t0.c0 LIKE '_b'")
                  .outcome,
              OracleOutcome::Passed);
    NorecOracle norec;
    EXPECT_EQ(runOracle(norec, conn, "SELECT * FROM t0",
                        "t0.c0 LIKE '_b'")
                  .outcome,
              OracleOutcome::Passed);
}

TEST(PqsPivotTest, DeterministicSelection)
{
    DialectProfile profile = testProfile({});
    Connection conn(profile);
    seed(conn);
    auto base_ast = parseStatement("SELECT * FROM t0");
    ASSERT_TRUE(base_ast.isOk());
    const auto &base =
        static_cast<const SelectStmt &>(*base_ast.value());
    auto scan = conn.execute(pivotScanText(base));
    ASSERT_TRUE(scan.isOk());
    auto first = selectPivot(base, scan.value(), 7);
    auto second = selectPivot(base, scan.value(), 7);
    ASSERT_TRUE(first.has_value());
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(first->rowIndex, second->rowIndex);
    EXPECT_EQ(first->binding, "t0");
    ASSERT_EQ(first->columns.size(), 2u);
    // Scan columns come back qualified; the pivot strips the binding.
    EXPECT_EQ(first->columns[0], "c0");
    EXPECT_EQ(first->columns[1], "c1");
    EXPECT_EQ(first->rowIndex, 7u % scan.value().rowCount());
}

/** Random predicate generator for the rectification property test. */
ExprPtr
randomPredicate(Rng &rng, int depth)
{
    auto column = [&rng]() -> ExprPtr {
        return std::make_unique<ColumnRefExpr>(
            "t0", rng.coin() ? "c0" : "c1");
    };
    auto literal = [&rng]() -> ExprPtr {
        switch (rng.below(4)) {
          case 0:
            return std::make_unique<LiteralExpr>(Value::null());
          case 1:
            return std::make_unique<LiteralExpr>(
                Value::text(rng.coin() ? "ab" : "_b%"));
          case 2:
            return std::make_unique<LiteralExpr>(
                Value::boolean(rng.coin()));
          default:
            return std::make_unique<LiteralExpr>(Value::integer(
                static_cast<int64_t>(rng.range(0, 5)) - 2));
        }
    };
    auto leaf = [&]() -> ExprPtr {
        return rng.coin() ? column() : literal();
    };
    if (depth <= 0)
        return leaf();

    switch (rng.below(6)) {
      case 0: {
        static const BinaryOp comparisons[] = {
            BinaryOp::Eq,        BinaryOp::NotEq,   BinaryOp::Less,
            BinaryOp::LessEq,    BinaryOp::Greater, BinaryOp::GreaterEq,
            BinaryOp::NullSafeEq};
        return std::make_unique<BinaryExpr>(
            comparisons[rng.below(7)], randomPredicate(rng, depth - 1),
            randomPredicate(rng, depth - 1));
      }
      case 1: {
        static const BinaryOp logic[] = {BinaryOp::And, BinaryOp::Or};
        return std::make_unique<BinaryExpr>(
            logic[rng.below(2)], randomPredicate(rng, depth - 1),
            randomPredicate(rng, depth - 1));
      }
      case 2: {
        static const BinaryOp arith[] = {BinaryOp::Add, BinaryOp::Sub,
                                         BinaryOp::Mul, BinaryOp::Div};
        return std::make_unique<BinaryExpr>(
            arith[rng.below(4)], leaf(), leaf());
      }
      case 3: {
        static const UnaryOp unaries[] = {
            UnaryOp::Not, UnaryOp::IsNull, UnaryOp::IsNotNull,
            UnaryOp::IsTrue, UnaryOp::IsFalse};
        return std::make_unique<UnaryExpr>(
            unaries[rng.below(5)], randomPredicate(rng, depth - 1));
      }
      case 4:
        return std::make_unique<BinaryExpr>(
            rng.coin() ? BinaryOp::Like : BinaryOp::NotLike, column(),
            std::make_unique<LiteralExpr>(
                Value::text(rng.coin() ? "_b" : "%a%")));
      default:
        return leaf();
    }
}

TEST(PqsRectificationTest, RectifiedPredicateIsTrueOnPivot)
{
    DialectProfile profile = testProfile({});

    Pivot pivot;
    pivot.binding = "t0";
    pivot.columns = {"c0", "c1"};

    const Row rows[] = {
        {Value::integer(2), Value::text("ab")},
        {Value::null(), Value::text("")},
        {Value::integer(-1), Value::null()},
        {Value::null(), Value::null()},
    };

    Rng rng(20260806);
    size_t rectified_count = 0, errors = 0;
    for (int i = 0; i < 500; ++i) {
        pivot.row = rows[i % 4];
        ExprPtr predicate = randomPredicate(rng, 3);
        PivotTruth truth =
            evalOnPivot(*predicate, pivot, profile.behavior);
        if (truth == PivotTruth::Error) {
            ++errors;
            continue;
        }
        ExprPtr rectified =
            rectifyPredicate(*predicate, pivot, profile);
        ASSERT_NE(rectified, nullptr)
            << printExpr(*predicate)
            << " (the test profile supports every wrapper)";
        EXPECT_EQ(evalOnPivot(*rectified, pivot, profile.behavior),
                  PivotTruth::True)
            << "rectified " << printExpr(*rectified) << " from "
            << printExpr(*predicate);
        ++rectified_count;
    }
    // The property must be exercised on a real sample, not vacuously.
    EXPECT_GE(rectified_count, 400u);
    EXPECT_LE(errors, 100u);
}

TEST(PqsCampaignTest, SilentOnFaultFreeReferenceDialect)
{
    CampaignConfig config;
    config.dialect = "postgres-like";
    config.seed = 20260806;
    config.checks = 300;
    config.oracles = {"PQS"};
    CampaignRunner runner(config);
    CampaignStats stats = runner.run();
    EXPECT_EQ(stats.bugsDetected, 0u)
        << "PQS false positive on the fault-free reference dialect";
    EXPECT_TRUE(stats.bugsByOracle.empty());
    EXPECT_GT(stats.checksAttempted, 0u);
    // Some shapes (joins, derived tables, empty sources) fall outside
    // PQS's domain and must be tallied as inapplicable, not invalid.
    EXPECT_GT(stats.checksInapplicable, 0u);
}

} // namespace
} // namespace sqlpp
