/**
 * @file
 * Static type checker tests: a strictly-typed Database must reject the
 * ill-typed statements a dynamically-typed one accepts.
 */
#include <gtest/gtest.h>

#include "engine/database.h"

namespace sqlpp {
namespace {

class TypecheckTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        EngineConfig config;
        config.behavior.staticTyping = true;
        strict = std::make_unique<Database>(config);
        ASSERT_TRUE(strict
                        ->execute("CREATE TABLE t0 "
                                  "(i INT, s TEXT, b BOOLEAN)")
                        .isOk());
    }

    void
    accepts(const std::string &sql)
    {
        auto result = strict->execute(sql);
        EXPECT_TRUE(result.isOk())
            << sql << " -> " << result.status().toString();
    }

    void
    rejects(const std::string &sql)
    {
        auto result = strict->execute(sql);
        EXPECT_FALSE(result.isOk()) << sql;
        if (!result.isOk()) {
            EXPECT_EQ(result.status().code(), ErrorCode::SemanticError)
                << sql << " -> " << result.status().toString();
        }
    }

    std::unique_ptr<Database> strict;
};

TEST_F(TypecheckTest, ArithmeticRequiresIntegers)
{
    accepts("SELECT i + 1 FROM t0");
    accepts("SELECT i + NULL FROM t0"); // unknown unifies
    rejects("SELECT s + 1 FROM t0");
    rejects("SELECT i + b FROM t0");
    rejects("SELECT -s FROM t0");
    rejects("SELECT ~b FROM t0");
}

TEST_F(TypecheckTest, ComparisonsRequireCommonType)
{
    accepts("SELECT i = 1 FROM t0");
    accepts("SELECT s < 'x' FROM t0");
    accepts("SELECT b = TRUE FROM t0");
    accepts("SELECT i = NULL FROM t0");
    rejects("SELECT i = s FROM t0");
    rejects("SELECT i = '1' FROM t0");
    rejects("SELECT b < 1 FROM t0");
    rejects("SELECT i <=> s FROM t0");
}

TEST_F(TypecheckTest, LogicalOperatorsRequireBooleans)
{
    accepts("SELECT b AND TRUE FROM t0");
    accepts("SELECT NOT b FROM t0");
    rejects("SELECT i AND b FROM t0");
    rejects("SELECT NOT i FROM t0");
    rejects("SELECT s OR b FROM t0");
}

TEST_F(TypecheckTest, WhereMustBeBoolean)
{
    accepts("SELECT * FROM t0 WHERE b");
    accepts("SELECT * FROM t0 WHERE i > 1");
    accepts("SELECT * FROM t0 WHERE NULL");
    rejects("SELECT * FROM t0 WHERE i");
    rejects("SELECT * FROM t0 WHERE s");
}

TEST_F(TypecheckTest, OnAndHavingMustBeBoolean)
{
    ASSERT_TRUE(strict->execute("CREATE TABLE t1 (i INT)").isOk());
    accepts("SELECT * FROM t0 INNER JOIN t1 ON t0.i = t1.i");
    rejects("SELECT * FROM t0 INNER JOIN t1 ON t0.i + t1.i");
    accepts("SELECT i FROM t0 GROUP BY i HAVING COUNT(*) > 0");
    rejects("SELECT i FROM t0 GROUP BY i HAVING SUM(i)");
}

TEST_F(TypecheckTest, StringOperatorsRequireText)
{
    accepts("SELECT s || 'x' FROM t0");
    accepts("SELECT s LIKE 'a%' FROM t0");
    rejects("SELECT i || 'x' FROM t0");
    rejects("SELECT i LIKE 'a%' FROM t0");
    rejects("SELECT s LIKE 1 FROM t0");
}

TEST_F(TypecheckTest, IsFormsAndBetween)
{
    accepts("SELECT i IS NULL FROM t0");
    accepts("SELECT s IS NOT NULL FROM t0");
    accepts("SELECT b IS TRUE FROM t0");
    rejects("SELECT i IS TRUE FROM t0");
    accepts("SELECT i BETWEEN 1 AND 3 FROM t0");
    rejects("SELECT i BETWEEN 1 AND 'x' FROM t0");
    accepts("SELECT i IN (1, 2, NULL) FROM t0");
    rejects("SELECT i IN (1, 'x') FROM t0");
}

TEST_F(TypecheckTest, CaseBranchesMustAgree)
{
    accepts("SELECT CASE WHEN b THEN 1 ELSE 2 END FROM t0");
    accepts("SELECT CASE WHEN b THEN 1 ELSE NULL END FROM t0");
    rejects("SELECT CASE WHEN b THEN 1 ELSE 'x' END FROM t0");
    rejects("SELECT CASE WHEN i THEN 1 END FROM t0");
    accepts("SELECT CASE i WHEN 1 THEN 'x' END FROM t0");
    rejects("SELECT CASE i WHEN 's' THEN 'x' END FROM t0");
}

TEST_F(TypecheckTest, FunctionSignatures)
{
    accepts("SELECT ABS(i) FROM t0");
    rejects("SELECT ABS(s) FROM t0");
    accepts("SELECT LENGTH(s) FROM t0");
    rejects("SELECT LENGTH(i) FROM t0");
    accepts("SELECT SIN(i) FROM t0");
    rejects("SELECT SIN(s) FROM t0");
    accepts("SELECT COALESCE(i, 1) FROM t0");
    accepts("SELECT NULLIF(i, 1) + 1 FROM t0");
    // NULLIF returns the first argument's type: TEXT + 1 is ill-typed.
    rejects("SELECT NULLIF(s, 'x') + 1 FROM t0");
    accepts("SELECT SUM(i) FROM t0");
    rejects("SELECT SUM(s) FROM t0");
    accepts("SELECT MAX(s) FROM t0");
}

TEST_F(TypecheckTest, CastBridgesTypes)
{
    accepts("SELECT CAST(i AS TEXT) || 'x' FROM t0");
    accepts("SELECT CAST(s AS INTEGER) + 1 FROM t0");
    accepts("SELECT * FROM t0 WHERE CAST(i AS BOOLEAN)");
}

TEST_F(TypecheckTest, InsertTypesChecked)
{
    accepts("INSERT INTO t0 VALUES (1, 'x', TRUE)");
    accepts("INSERT INTO t0 VALUES (NULL, NULL, NULL)");
    rejects("INSERT INTO t0 VALUES ('x', 'x', TRUE)");
    rejects("INSERT INTO t0 (i) VALUES (TRUE)");
    rejects("INSERT INTO t0 (b) VALUES (1)");
}

TEST_F(TypecheckTest, SubqueriesChecked)
{
    ASSERT_TRUE(strict->execute("CREATE TABLE t1 (i INT)").isOk());
    accepts("SELECT * FROM t0 WHERE i IN (SELECT i FROM t1)");
    rejects("SELECT * FROM t0 WHERE s IN (SELECT i FROM t1)");
    rejects("SELECT * FROM t0 WHERE i IN (SELECT s + 1 FROM t0)");
    accepts("SELECT (SELECT MAX(i) FROM t1) + 1");
    rejects("SELECT (SELECT MAX(s) FROM t0) + 1 FROM t0");
}

TEST_F(TypecheckTest, DerivedTableTypesPropagate)
{
    accepts("SELECT d.x + 1 FROM (SELECT i AS x FROM t0) AS d");
    rejects("SELECT d.x + 1 FROM (SELECT s AS x FROM t0) AS d");
}

TEST_F(TypecheckTest, ViewTypesPropagate)
{
    ASSERT_TRUE(
        strict->execute("CREATE VIEW v0(x) AS SELECT s FROM t0")
            .isOk());
    rejects("SELECT x + 1 FROM v0");
    accepts("SELECT x || 'y' FROM v0");
}

TEST_F(TypecheckTest, PartialIndexPredicateChecked)
{
    accepts("CREATE INDEX i0 ON t0(i) WHERE i > 1");
    rejects("CREATE INDEX i1 ON t0(i) WHERE i + 1");
    rejects("CREATE INDEX i2 ON t0(i) WHERE s");
}

TEST_F(TypecheckTest, DynamicDatabaseAcceptsEverything)
{
    // The same statements a strict dialect rejects run fine dynamically.
    Database dynamic;
    ASSERT_TRUE(
        dynamic.execute("CREATE TABLE t0 (i INT, s TEXT, b BOOLEAN)")
            .isOk());
    EXPECT_TRUE(dynamic.execute("SELECT s + 1 FROM t0").isOk());
    EXPECT_TRUE(dynamic.execute("SELECT * FROM t0 WHERE i").isOk());
    EXPECT_TRUE(dynamic.execute("SELECT i || 'x' FROM t0").isOk());
}

} // namespace
} // namespace sqlpp
