/**
 * @file
 * Adaptive generator tests: statement well-formedness, feature
 * recording, schema-model discipline, gating, the depth schedule,
 * determinism, and end-to-end validity learning against dialects.
 */
#include <gtest/gtest.h>

#include "core/baseline.h"
#include "core/feedback.h"
#include "core/generator.h"
#include "dialect/connection.h"
#include "parser/parser.h"

namespace sqlpp {
namespace {

class GeneratorTest : public ::testing::Test
{
  protected:
    GeneratorTest() : gen_(makeConfig(), registry_, gate_, model_) {}

    static GeneratorConfig
    makeConfig()
    {
        GeneratorConfig config;
        config.seed = 42;
        return config;
    }

    FeatureRegistry registry_;
    OpenGate gate_;
    SchemaModel model_;
    AdaptiveGenerator gen_;
};

TEST_F(GeneratorTest, FirstSetupStatementCreatesTable)
{
    GeneratedStatement stmt = gen_.generateSetupStatement();
    EXPECT_EQ(stmt.kind, StmtKind::CreateTable);
    EXPECT_TRUE(stmt.pendingTable.has_value());
    EXPECT_TRUE(parseStatement(stmt.text).isOk()) << stmt.text;
}

TEST_F(GeneratorTest, SchemaModelOnlyUpdatedOnSuccess)
{
    GeneratedStatement stmt = gen_.generateSetupStatement();
    gen_.noteExecution(stmt, /*success=*/false);
    EXPECT_EQ(model_.tableCount(false), 0u);
    gen_.noteExecution(stmt, /*success=*/true);
    EXPECT_EQ(model_.tableCount(false), 1u);
}

TEST_F(GeneratorTest, SetupStatementsAlwaysParse)
{
    for (int i = 0; i < 300; ++i) {
        GeneratedStatement stmt = gen_.generateSetupStatement();
        auto parsed = parseStatement(stmt.text);
        ASSERT_TRUE(parsed.isOk())
            << stmt.text << " -> " << parsed.status().toString();
        gen_.noteExecution(stmt, true);
    }
}

TEST_F(GeneratorTest, SelectsAlwaysParse)
{
    for (int i = 0; i < 10; ++i)
        gen_.noteExecution(gen_.generateSetupStatement(), true);
    for (int i = 0; i < 300; ++i) {
        GeneratedStatement stmt = gen_.generateSelect();
        ASSERT_TRUE(stmt.isQuery);
        auto parsed = parseStatement(stmt.text);
        ASSERT_TRUE(parsed.isOk())
            << stmt.text << " -> " << parsed.status().toString();
    }
}

TEST_F(GeneratorTest, EveryStatementRecordsItsStatementFeature)
{
    GeneratedStatement stmt = gen_.generateSetupStatement();
    FeatureId create =
        registry_.find(features::stmt(StmtKind::CreateTable));
    EXPECT_TRUE(stmt.features.count(create));
}

TEST_F(GeneratorTest, QueryShapeNeedsTables)
{
    EXPECT_FALSE(gen_.generateQueryShape().has_value());
    for (int i = 0; i < 5; ++i)
        gen_.noteExecution(gen_.generateSetupStatement(), true);
    auto shape = gen_.generateQueryShape();
    ASSERT_TRUE(shape.has_value());
    ASSERT_NE(shape->base, nullptr);
    ASSERT_NE(shape->predicate, nullptr);
    EXPECT_EQ(shape->base->where, nullptr); // predicate kept separate
    EXPECT_FALSE(shape->base->from.empty());
}

TEST_F(GeneratorTest, DepthScheduleProgresses)
{
    GeneratorConfig config;
    config.seed = 1;
    config.depthStep = 10;
    config.maxDepth = 3;
    SchemaModel model;
    AdaptiveGenerator gen(config, registry_, gate_, model);
    EXPECT_EQ(gen.currentDepth(), 1);
    for (int i = 0; i < 10; ++i)
        gen.generateSetupStatement();
    EXPECT_EQ(gen.currentDepth(), 2);
    for (int i = 0; i < 10; ++i)
        gen.generateSetupStatement();
    EXPECT_EQ(gen.currentDepth(), 3);
    for (int i = 0; i < 100; ++i)
        gen.generateSetupStatement();
    EXPECT_EQ(gen.currentDepth(), 3); // capped
}

TEST_F(GeneratorTest, DeterministicUnderSeed)
{
    GeneratorConfig config;
    config.seed = 99;
    SchemaModel model_a, model_b;
    AdaptiveGenerator a(config, registry_, gate_, model_a);
    AdaptiveGenerator b(config, registry_, gate_, model_b);
    for (int i = 0; i < 50; ++i) {
        GeneratedStatement sa = a.generateSetupStatement();
        GeneratedStatement sb = b.generateSetupStatement();
        ASSERT_EQ(sa.text, sb.text);
        a.noteExecution(sa, true);
        b.noteExecution(sb, true);
    }
}

TEST_F(GeneratorTest, SubqueriesCanBeDisabled)
{
    GeneratorConfig config;
    config.seed = 5;
    config.enableSubqueries = false;
    SchemaModel model;
    AdaptiveGenerator gen(config, registry_, gate_, model);
    for (int i = 0; i < 10; ++i)
        gen.noteExecution(gen.generateSetupStatement(), true);
    for (int i = 0; i < 200; ++i) {
        GeneratedStatement stmt = gen.generateSelect();
        EXPECT_EQ(stmt.text.find("(SELECT"), std::string::npos)
            << stmt.text;
    }
}

class GateDenyAll : public FeatureGate
{
  public:
    explicit GateDenyAll(FeatureId denied) : denied_(denied) {}
    bool
    allow(FeatureId id) const override
    {
        return id != denied_;
    }

  private:
    FeatureId denied_;
};

TEST(GeneratorGateTest, SuppressedStatementFeatureNeverGenerated)
{
    FeatureRegistry registry;
    FeatureId index_feature =
        registry.intern(features::stmt(StmtKind::CreateIndex),
                        FeatureKind::Statement);
    GateDenyAll gate(index_feature);
    SchemaModel model;
    GeneratorConfig config;
    config.seed = 3;
    AdaptiveGenerator gen(config, registry, gate, model);
    for (int i = 0; i < 400; ++i) {
        GeneratedStatement stmt = gen.generateSetupStatement();
        EXPECT_NE(stmt.kind, StmtKind::CreateIndex) << stmt.text;
        gen.noteExecution(stmt, true);
    }
}

TEST(GeneratorGateTest, SuppressedOperatorNeverAppears)
{
    FeatureRegistry registry;
    FeatureId nullsafe = registry.intern(
        features::binaryOp(BinaryOp::NullSafeEq), FeatureKind::Operator);
    GateDenyAll gate(nullsafe);
    SchemaModel model;
    GeneratorConfig config;
    config.seed = 8;
    AdaptiveGenerator gen(config, registry, gate, model);
    for (int i = 0; i < 10; ++i)
        gen.noteExecution(gen.generateSetupStatement(), true);
    for (int i = 0; i < 400; ++i) {
        GeneratedStatement stmt = gen.generateSelect();
        EXPECT_EQ(stmt.text.find("<=>"), std::string::npos) << stmt.text;
    }
}

/**
 * End-to-end learning: running the generator with feedback against a
 * dialect must raise the validity rate substantially over the
 * feedback-free configuration (paper Table 4's shape).
 */
double
measureValidity(const DialectProfile &profile, bool with_feedback,
                uint64_t seed)
{
    FeatureRegistry registry;
    FeedbackConfig fb;
    fb.enabled = with_feedback;
    fb.updateInterval = 200;
    fb.ddlFailureLimit = 8;
    FeedbackTracker tracker(fb);
    FeedbackGate gate(tracker);
    SchemaModel model;
    GeneratorConfig config;
    config.seed = seed;
    config.depthStep = 150;
    AdaptiveGenerator gen(config, registry, gate, model);
    Connection connection(profile);

    for (int i = 0; i < 120; ++i) {
        GeneratedStatement stmt = gen.generateSetupStatement();
        bool ok = connection.executeAdapted(stmt.text).isOk();
        tracker.record(stmt.features, ok, false);
        gen.noteExecution(stmt, ok);
    }
    // Warm-up queries to learn, then measure.
    auto run_queries = [&](int count, bool measure) {
        int ok_count = 0;
        for (int i = 0; i < count; ++i) {
            GeneratedStatement stmt = gen.generateSelect();
            bool ok = connection.execute(stmt.text).isOk();
            tracker.record(stmt.features, ok, true);
            ok_count += ok ? 1 : 0;
        }
        return measure ? static_cast<double>(ok_count) / count : 0.0;
    };
    run_queries(1500, false);
    return run_queries(600, true);
}

TEST(GeneratorLearningTest, FeedbackRaisesValidityOnStrictDialect)
{
    const DialectProfile *pg = findDialect("postgres-like");
    ASSERT_NE(pg, nullptr);
    double with = measureValidity(*pg, true, 21);
    double without = measureValidity(*pg, false, 21);
    // The paper's +121% relative gain on PostgreSQL is compressed at
    // this budget (see EXPERIMENTS.md); the direction must be clear.
    EXPECT_GT(with, without + 0.05)
        << "with=" << with << " without=" << without;
}

TEST(GeneratorLearningTest, LearnsUnsupportedStatementsQuickly)
{
    // cratedb-like has no CREATE INDEX: after the DDL failure limit the
    // generator must stop producing it.
    const DialectProfile *crate = findDialect("cratedb-like");
    ASSERT_NE(crate, nullptr);
    FeatureRegistry registry;
    FeedbackConfig fb;
    fb.ddlFailureLimit = 6;
    FeedbackTracker tracker(fb);
    FeedbackGate gate(tracker);
    SchemaModel model;
    GeneratorConfig config;
    config.seed = 12;
    AdaptiveGenerator gen(config, registry, gate, model);
    Connection connection(*crate);
    int late_index_attempts = 0;
    for (int i = 0; i < 600; ++i) {
        GeneratedStatement stmt = gen.generateSetupStatement();
        bool ok = connection.executeAdapted(stmt.text).isOk();
        tracker.record(stmt.features, ok, false);
        gen.noteExecution(stmt, ok);
        if (i > 300 && stmt.kind == StmtKind::CreateIndex)
            ++late_index_attempts;
    }
    EXPECT_EQ(late_index_attempts, 0);
}

TEST(BaselineGateTest, MatchesProfileCapabilities)
{
    FeatureRegistry registry;
    const DialectProfile *mysql = findDialect("mysql-like");
    ASSERT_NE(mysql, nullptr);
    ProfileGate gate(*mysql, registry);
    EXPECT_TRUE(gate.allowName("OP_<=>"));
    EXPECT_FALSE(gate.allowName("OP_||"));
    EXPECT_FALSE(gate.allowName("JOIN_FULL"));
    EXPECT_TRUE(gate.allowName("JOIN_LEFT"));
    EXPECT_TRUE(gate.allowName("FN_SIN"));
    EXPECT_FALSE(gate.allowName("FN_TYPEOF"));
    EXPECT_TRUE(gate.allowName("PROP_UNTYPED_EXPR")); // dynamic typing
}

TEST(BaselineGateTest, CompositeArgFeaturesFollowTyping)
{
    FeatureRegistry registry;
    const DialectProfile *pg = findDialect("postgres-like");
    const DialectProfile *sqlite = findDialect("sqlite-like");
    ProfileGate pg_gate(*pg, registry);
    ProfileGate sqlite_gate(*sqlite, registry);
    // Static typing: SIN only takes integers.
    EXPECT_TRUE(pg_gate.allowName("SIN1INT"));
    EXPECT_FALSE(pg_gate.allowName("SIN1STRING"));
    EXPECT_FALSE(pg_gate.allowName("PROP_UNTYPED_EXPR"));
    // Dynamic typing: anything goes.
    EXPECT_TRUE(sqlite_gate.allowName("SIN1INT"));
    EXPECT_TRUE(sqlite_gate.allowName("SIN1STRING"));
}

TEST(BaselineGateTest, BaselineGeneratorIsHighlyValidImmediately)
{
    // The omniscient baseline needs no learning phase: its validity is
    // high from the first statement (the paper's hand-written
    // generator property).
    const DialectProfile *pg = findDialect("postgres-like");
    FeatureRegistry registry;
    ProfileGate gate(*pg, registry);
    SchemaModel model;
    GeneratorConfig config;
    config.seed = 31;
    AdaptiveGenerator gen(config, registry, gate, model);
    Connection connection(*pg);
    int setup_ok = 0;
    for (int i = 0; i < 100; ++i) {
        GeneratedStatement stmt = gen.generateSetupStatement();
        bool ok = connection.executeAdapted(stmt.text).isOk();
        gen.noteExecution(stmt, ok);
        setup_ok += ok ? 1 : 0;
    }
    int query_ok = 0;
    for (int i = 0; i < 300; ++i) {
        GeneratedStatement stmt = gen.generateSelect();
        query_ok += connection.execute(stmt.text).isOk() ? 1 : 0;
    }
    EXPECT_GT(setup_ok, 60);
    EXPECT_GT(query_ok, 200);
}

} // namespace
} // namespace sqlpp
