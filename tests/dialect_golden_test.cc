/**
 * @file
 * Golden-file test for the built-in dialect profiles.
 *
 * The 17 campaign profiles (plus postgres-like) are the experiment's
 * fixed independent variable: Table 2 rows, the ground-truth fault
 * sets, the capability matrices the generator learns. A silent edit to
 * any of them invalidates cross-run comparisons, so the full rendering
 * of every profile is pinned in tests/golden/profiles.txt and diffed
 * here. To change a profile deliberately, regenerate the file:
 *
 *   SQLPP_UPDATE_GOLDEN=1 ./dialect_golden_test
 */
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "dialect/profile.h"

namespace sqlpp {
namespace {

std::string
goldenPath()
{
    return std::string(SQLPP_GOLDEN_DIR) + "/profiles.txt";
}

std::string
renderAllProfiles()
{
    std::string out;
    for (const DialectProfile &profile : allDialectProfiles()) {
        out += describeProfile(profile);
        out += "\n";
    }
    return out;
}

TEST(DialectGoldenTest, ProfileCountIsStable)
{
    // 17 Table 2 campaign systems + postgres-like (Tables 3/4).
    EXPECT_EQ(allDialectProfiles().size(), 18u);
    EXPECT_EQ(campaignDialects().size(), 17u);
}

TEST(DialectGoldenTest, ProfilesMatchGoldenFile)
{
    std::string rendered = renderAllProfiles();

    if (std::getenv("SQLPP_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(goldenPath(), std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << goldenPath();
        out << rendered;
        GTEST_SKIP() << "golden file regenerated: " << goldenPath();
    }

    std::ifstream in(goldenPath(), std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << goldenPath()
                    << "; regenerate with SQLPP_UPDATE_GOLDEN=1";
    std::ostringstream golden;
    golden << in.rdbuf();

    EXPECT_EQ(rendered, golden.str())
        << "dialect profiles diverged from tests/golden/profiles.txt; "
           "if the change is intentional, rerun with "
           "SQLPP_UPDATE_GOLDEN=1";
}

TEST(DialectGoldenTest, EveryProfileRendersItsName)
{
    for (const DialectProfile &profile : allDialectProfiles()) {
        std::string text = describeProfile(profile);
        EXPECT_NE(text.find("== " + profile.name + " =="),
                  std::string::npos);
        // Every campaign profile ships ground-truth faults.
        if (profile.name != "postgres-like")
            EXPECT_EQ(text.find("faults: \n"), std::string::npos)
                << profile.name << " has an empty fault set";
    }
}

} // namespace
} // namespace sqlpp
