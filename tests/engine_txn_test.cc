/**
 * @file
 * Engine transaction semantics: BEGIN/COMMIT/ROLLBACK, savepoints,
 * snapshot visibility across sessions, first-committer-wins conflicts,
 * the isolation-fault family, and the batch-mode fallback inside
 * explicit transactions.
 */
#include <gtest/gtest.h>

#include "engine/database.h"
#include "parser/parser.h"

namespace sqlpp {
namespace {

class TxnTest : public ::testing::Test
{
  protected:
    ResultSet
    ok(const std::string &sql, SessionId session = 0)
    {
        auto result = db.execute(sql, session);
        EXPECT_TRUE(result.isOk())
            << sql << " -> " << result.status().toString();
        return result.isOk() ? result.takeValue() : ResultSet();
    }

    Status
    err(const std::string &sql, SessionId session = 0)
    {
        auto result = db.execute(sql, session);
        EXPECT_FALSE(result.isOk()) << sql;
        return result.isOk() ? Status::ok() : result.status();
    }

    int64_t
    count(const std::string &table, SessionId session = 0)
    {
        ResultSet result =
            ok("SELECT COUNT(*) FROM " + table, session);
        EXPECT_EQ(result.rowCount(), 1u);
        return result.rows()[0][0].asInt();
    }

    Database db;
};

TEST_F(TxnTest, CommitPublishesRollbackDiscards)
{
    ok("CREATE TABLE t (a INT)");
    ok("INSERT INTO t VALUES (1)");
    SessionId s = db.openSession();
    ok("BEGIN", s);
    EXPECT_TRUE(db.inTransaction(s));
    ok("INSERT INTO t VALUES (2)", s);
    EXPECT_EQ(count("t", s), 2);
    EXPECT_EQ(count("t"), 1); // invisible outside until COMMIT
    ok("COMMIT", s);
    EXPECT_FALSE(db.inTransaction(s));
    EXPECT_EQ(count("t"), 2);

    ok("BEGIN", s);
    ok("INSERT INTO t VALUES (3)", s);
    ok("ROLLBACK", s);
    EXPECT_EQ(count("t"), 2);
    EXPECT_EQ(count("t", s), 2);
}

TEST_F(TxnTest, SnapshotHidesConcurrentCommits)
{
    ok("CREATE TABLE t (a INT)");
    SessionId reader = db.openSession();
    SessionId writer = db.openSession();
    ok("BEGIN", reader);
    EXPECT_EQ(count("t", reader), 0);
    ok("BEGIN", writer);
    ok("INSERT INTO t VALUES (1)", writer);
    ok("COMMIT", writer);
    // Snapshot isolation: the commit landed after reader's BEGIN.
    EXPECT_EQ(count("t", reader), 0);
    ResultSet filtered = ok("SELECT a FROM t WHERE a < 10", reader);
    EXPECT_EQ(filtered.rowCount(), 0u);
    ok("COMMIT", reader);
    EXPECT_EQ(count("t", reader), 1);
}

TEST_F(TxnTest, TransactionalDdlIsSnapshotted)
{
    SessionId s = db.openSession();
    ok("BEGIN", s);
    ok("CREATE TABLE t (a INT)", s);
    ok("INSERT INTO t VALUES (1)", s);
    EXPECT_EQ(count("t", s), 1);
    EXPECT_EQ(err("SELECT COUNT(*) FROM t").code(),
              ErrorCode::SemanticError); // not yet committed
    ok("COMMIT", s);
    EXPECT_EQ(count("t"), 1);
}

TEST_F(TxnTest, SavepointRollbackToAndRelease)
{
    ok("CREATE TABLE t (a INT)");
    SessionId s = db.openSession();
    ok("BEGIN", s);
    ok("INSERT INTO t VALUES (1)", s);
    ok("SAVEPOINT sp1", s);
    ok("INSERT INTO t VALUES (2)", s);
    ok("SAVEPOINT sp2", s);
    ok("INSERT INTO t VALUES (3)", s);
    EXPECT_EQ(count("t", s), 3);
    ok("ROLLBACK TO sp1", s);
    EXPECT_EQ(count("t", s), 1);
    // sp1 survives its own ROLLBACK TO; sp2 (younger) is gone.
    EXPECT_EQ(err("ROLLBACK TO sp2", s).code(),
              ErrorCode::SemanticError);
    ok("INSERT INTO t VALUES (4)", s);
    ok("ROLLBACK TO SAVEPOINT sp1", s);
    EXPECT_EQ(count("t", s), 1);
    ok("RELEASE sp1", s);
    EXPECT_EQ(err("ROLLBACK TO sp1", s).code(),
              ErrorCode::SemanticError);
    ok("COMMIT", s);
    EXPECT_EQ(count("t"), 1);
}

TEST_F(TxnTest, ControlStatementErrors)
{
    EXPECT_EQ(err("COMMIT").code(), ErrorCode::SemanticError);
    EXPECT_EQ(err("ROLLBACK").code(), ErrorCode::SemanticError);
    EXPECT_EQ(err("SAVEPOINT sp").code(), ErrorCode::SemanticError);
    EXPECT_EQ(err("RELEASE sp").code(), ErrorCode::SemanticError);
    ok("BEGIN");
    EXPECT_EQ(err("BEGIN").code(), ErrorCode::SemanticError);
    EXPECT_EQ(err("ROLLBACK TO nope").code(),
              ErrorCode::SemanticError);
    ok("ROLLBACK");
}

TEST_F(TxnTest, FirstCommitterWinsOnConflict)
{
    ok("CREATE TABLE t (a INT UNIQUE)");
    SessionId s1 = db.openSession();
    SessionId s2 = db.openSession();
    ok("BEGIN", s1);
    ok("BEGIN", s2);
    ok("INSERT INTO t VALUES (7)", s1);
    ok("INSERT INTO t VALUES (7)", s2); // fine: private versions
    ok("COMMIT", s1);
    Status second = err("COMMIT", s2);
    EXPECT_EQ(second.code(), ErrorCode::RuntimeError);
    EXPECT_NE(second.toString().find("COMMIT aborted"),
              std::string::npos);
    // The losing transaction is gone, its writes discarded.
    EXPECT_FALSE(db.inTransaction(s2));
    EXPECT_EQ(count("t"), 1);
}

TEST_F(TxnTest, ConcurrentDisjointCommitsMergeInCommitOrder)
{
    ok("CREATE TABLE t (a INT)");
    SessionId s1 = db.openSession();
    SessionId s2 = db.openSession();
    ok("BEGIN", s1);
    ok("BEGIN", s2);
    ok("INSERT INTO t VALUES (1)", s1);
    ok("INSERT INTO t VALUES (2)", s2);
    ok("COMMIT", s2);
    ok("COMMIT", s1);
    ResultSet rows = ok("SELECT a FROM t");
    ASSERT_EQ(rows.rowCount(), 2u);
    EXPECT_EQ(rows.rows()[0][0].asInt(), 2); // s2 committed first
    EXPECT_EQ(rows.rows()[1][0].asInt(), 1);
}

TEST_F(TxnTest, BatchModeFallsBackToRowInTransaction)
{
    ok("CREATE TABLE t (a INT)");
    ok("INSERT INTO t VALUES (1), (2), (3)");
    ok("BEGIN");
    ok("INSERT INTO t VALUES (4)");
    auto parsed = parseStatement("SELECT COUNT(*) FROM t WHERE a > 1");
    ASSERT_TRUE(parsed.isOk());
    auto batch = db.executeStmt(*parsed.value(), ExecMode::Batch, 0);
    ASSERT_TRUE(batch.isOk()) << batch.status().toString();
    EXPECT_EQ(batch.value().rows()[0][0].asInt(), 3);
    ok("COMMIT");
    auto after = db.executeStmt(*parsed.value(), ExecMode::Batch, 0);
    ASSERT_TRUE(after.isOk());
    EXPECT_EQ(after.value().rows()[0][0].asInt(), 3);
}

class TxnFaultTest : public ::testing::Test
{
  protected:
    Database
    makeDb(FaultId fault)
    {
        EngineConfig config;
        config.faults.enable(fault);
        return Database(config);
    }
};

TEST_F(TxnFaultTest, DirtyReadSeesPendingWrites)
{
    Database db = makeDb(FaultId::TxnDirtyRead);
    ASSERT_TRUE(db.execute("CREATE TABLE t (a INT)").isOk());
    SessionId writer = db.openSession();
    SessionId reader = db.openSession();
    ASSERT_TRUE(db.execute("BEGIN", writer).isOk());
    ASSERT_TRUE(db.execute("INSERT INTO t VALUES (1)", writer).isOk());
    auto rows = db.execute("SELECT COUNT(*) FROM t", reader);
    ASSERT_TRUE(rows.isOk());
    EXPECT_EQ(rows.value().rows()[0][0].asInt(), 1); // dirty
    ASSERT_TRUE(db.execute("ROLLBACK", writer).isOk());
    rows = db.execute("SELECT COUNT(*) FROM t", reader);
    ASSERT_TRUE(rows.isOk());
    EXPECT_EQ(rows.value().rows()[0][0].asInt(), 0);
}

TEST_F(TxnFaultTest, NonRepeatableReadFollowsCommits)
{
    Database db = makeDb(FaultId::TxnNonRepeatableRead);
    ASSERT_TRUE(db.execute("CREATE TABLE t (a INT)").isOk());
    SessionId reader = db.openSession();
    SessionId writer = db.openSession();
    ASSERT_TRUE(db.execute("BEGIN", reader).isOk());
    ASSERT_TRUE(db.execute("BEGIN", writer).isOk());
    ASSERT_TRUE(db.execute("INSERT INTO t VALUES (1)", writer).isOk());
    ASSERT_TRUE(db.execute("COMMIT", writer).isOk());
    auto rows = db.execute("SELECT COUNT(*) FROM t", reader);
    ASSERT_TRUE(rows.isOk());
    EXPECT_EQ(rows.value().rows()[0][0].asInt(), 1); // leaked
}

TEST_F(TxnFaultTest, PhantomLeaksOnlyIntoPredicatedReads)
{
    Database db = makeDb(FaultId::TxnPhantomClaimedSnapshot);
    ASSERT_TRUE(db.execute("CREATE TABLE t (a INT)").isOk());
    SessionId reader = db.openSession();
    SessionId writer = db.openSession();
    ASSERT_TRUE(db.execute("BEGIN", reader).isOk());
    ASSERT_TRUE(db.execute("BEGIN", writer).isOk());
    ASSERT_TRUE(db.execute("INSERT INTO t VALUES (1)", writer).isOk());
    ASSERT_TRUE(db.execute("COMMIT", writer).isOk());
    auto full = db.execute("SELECT a FROM t", reader);
    ASSERT_TRUE(full.isOk());
    EXPECT_EQ(full.value().rowCount(), 0u); // snapshot honoured
    auto pred = db.execute("SELECT a FROM t WHERE a < 10", reader);
    ASSERT_TRUE(pred.isOk());
    EXPECT_EQ(pred.value().rowCount(), 1u); // phantom
}

TEST_F(TxnFaultTest, LostUpdateClobbersConcurrentCommit)
{
    Database db = makeDb(FaultId::TxnLostUpdate);
    ASSERT_TRUE(db.execute("CREATE TABLE t (a INT)").isOk());
    SessionId s1 = db.openSession();
    SessionId s2 = db.openSession();
    ASSERT_TRUE(db.execute("BEGIN", s1).isOk());
    ASSERT_TRUE(db.execute("BEGIN", s2).isOk());
    ASSERT_TRUE(db.execute("INSERT INTO t VALUES (1)", s1).isOk());
    ASSERT_TRUE(db.execute("INSERT INTO t VALUES (2)", s2).isOk());
    ASSERT_TRUE(db.execute("COMMIT", s1).isOk());
    ASSERT_TRUE(db.execute("COMMIT", s2).isOk());
    auto rows = db.execute("SELECT a FROM t");
    ASSERT_TRUE(rows.isOk());
    // s2 published its private version wholesale: s1's row is gone.
    ASSERT_EQ(rows.value().rowCount(), 1u);
    EXPECT_EQ(rows.value().rows()[0][0].asInt(), 2);
}

TEST_F(TxnFaultTest, AllIsolationFaultsAreSingleSessionNoOps)
{
    for (FaultId fault : allFaultIds()) {
        if (!isIsolationFault(fault))
            continue;
        Database db = makeDb(fault);
        ASSERT_TRUE(db.execute("CREATE TABLE t (a INT)").isOk());
        ASSERT_TRUE(db.execute("INSERT INTO t VALUES (1)").isOk());
        ASSERT_TRUE(db.execute("BEGIN").isOk());
        ASSERT_TRUE(db.execute("INSERT INTO t VALUES (2)").isOk());
        auto in_txn = db.execute("SELECT COUNT(*) FROM t WHERE a < 9");
        ASSERT_TRUE(in_txn.isOk());
        EXPECT_EQ(in_txn.value().rows()[0][0].asInt(), 2)
            << faultName(fault);
        ASSERT_TRUE(db.execute("COMMIT").isOk());
        auto after = db.execute("SELECT COUNT(*) FROM t");
        ASSERT_TRUE(after.isOk());
        EXPECT_EQ(after.value().rows()[0][0].asInt(), 2)
            << faultName(fault);
    }
}

} // namespace
} // namespace sqlpp
