/**
 * @file
 * Flight-recorder integration tests: fixed-seed JSONL byte-identity,
 * dossier-set invariance across worker counts, learning-curve
 * determinism and checkpoint round-trips, and the end-to-end dossier
 * contract — every written repro.sql must re-trigger the bug on a
 * fresh connection.
 */
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/dossier.h"
#include "core/scheduler.h"
#include "util/trace.h"

namespace sqlpp {
namespace {

namespace fs = std::filesystem;

SchedulerConfig
sliceConfig(size_t workers, size_t slices)
{
    SchedulerConfig config;
    config.mode = ScheduleMode::SliceChecks;
    config.workers = workers;
    config.slices = slices;
    config.campaign.dialect = "sqlite-like";
    config.campaign.seed = 7;
    config.campaign.setupStatements = 40;
    config.campaign.checks = 240;
    config.campaign.feedback.updateInterval = 100;
    config.campaign.feedback.ddlFailureLimit = 6;
    config.campaign.generator.depthStep = 80;
    return config;
}

/** Fresh per-test scratch directory under the system temp root. */
class TraceIntegrationTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        TraceRecorder::instance().reset();
        dir_ = fs::temp_directory_path() /
               ("sqlpp_trace_test_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override
    {
        fs::remove_all(dir_);
        TraceRecorder::instance().reset();
    }

    std::string path(const std::string &leaf) const
    {
        return (dir_ / leaf).string();
    }

    fs::path dir_;
};

std::string
readFile(const fs::path &file)
{
    std::ifstream in(file, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** Map of bug-id -> repro.sql text under one dossier root. */
std::map<std::string, std::string>
dossierSet(const fs::path &root)
{
    std::map<std::string, std::string> set;
    if (!fs::exists(root))
        return set;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(root)) {
        if (!entry.is_directory())
            continue;
        set[entry.path().filename().string()] =
            readFile(entry.path() / "repro.sql");
    }
    return set;
}

TEST_F(TraceIntegrationTest, FixedSeedExportIsByteIdentical)
{
    // The headline determinism bar: two single-worker runs of the same
    // config produce byte-identical sqlpp.trace.v1 exports, because
    // every event is stamped with a logical tick, never a wall clock.
    auto capture = [] {
        TraceRecorder::instance().reset();
        CampaignScheduler(sliceConfig(1, 2)).run();
        return exportTraceJsonl();
    };
    std::string first = capture();
    std::string second = capture();
    EXPECT_EQ(first, second);
#ifndef SQLPP_NO_TRACE
    EXPECT_NE(first.find("\"schema\": \"sqlpp.trace.v1\""),
              std::string::npos);
    EXPECT_NE(first.find("\"type\": \"shard_started\""),
              std::string::npos);
    EXPECT_NE(first.find("\"type\": \"oracle_check\""),
              std::string::npos);
    EXPECT_NE(first.find("\"type\": \"bug_found\""),
              std::string::npos);
#endif
}

TEST_F(TraceIntegrationTest, MergedStatsUnaffectedByRecorderState)
{
    // Tracing is an observer: a run with a dirty recorder (leftover
    // lanes from a previous campaign) merges to the same stats.
    ScheduleReport clean = CampaignScheduler(sliceConfig(1, 2)).run();
    ScheduleReport dirty = CampaignScheduler(sliceConfig(1, 2)).run();
    EXPECT_TRUE(clean.merged == dirty.merged);
}

TEST_F(TraceIntegrationTest, DossierSetInvariantAcrossWorkerCounts)
{
    std::map<std::string, std::string> sets[3];
    size_t workers[3] = {1, 2, 4};
    for (size_t i = 0; i < 3; ++i) {
        SchedulerConfig config = sliceConfig(workers[i], 4);
        config.dossierDir = path("dossiers_w" +
                                 std::to_string(workers[i]));
        ScheduleReport report = CampaignScheduler(config).run();
        EXPECT_EQ(report.dossiersWritten,
                  report.merged.prioritizedBugs.size());
        sets[i] = dossierSet(config.dossierDir);
        EXPECT_EQ(sets[i].size(), report.dossiersWritten);
    }
    ASSERT_FALSE(sets[0].empty());
    EXPECT_EQ(sets[0], sets[1]);
    EXPECT_EQ(sets[0], sets[2]);
}

TEST_F(TraceIntegrationTest, DossierSetSurvivesCheckpointResume)
{
    // First process: run only a prefix of the shards (simulated by
    // checkpointing a full run, then resuming into a fresh scheduler).
    SchedulerConfig config = sliceConfig(2, 4);
    config.checkpointPath = path("campaign.ckpt");
    config.dossierDir = path("dossiers_first");
    ScheduleReport first = CampaignScheduler(config).run();
    ASSERT_FALSE(first.merged.prioritizedBugs.empty());

    // Second process: everything restores from the checkpoint; the
    // dossier writer must still emit the full set (events.jsonl may be
    // empty — the rings died with the "first process" — but bug ids
    // and repro.sql are pinned by the case identity).
    SchedulerConfig resumed = config;
    resumed.resume = true;
    resumed.dossierDir = path("dossiers_resumed");
    ScheduleReport second = CampaignScheduler(resumed).run();
    EXPECT_EQ(second.shardsFromCheckpoint, 4u);

    auto first_set = dossierSet(config.dossierDir);
    auto resumed_set = dossierSet(resumed.dossierDir);
    EXPECT_EQ(first_set, resumed_set);
    EXPECT_EQ(second.dossiersWritten, first.dossiersWritten);
}

TEST_F(TraceIntegrationTest, EveryDossierReproReproduces)
{
    SchedulerConfig config = sliceConfig(2, 3);
    config.dossierDir = path("dossiers");
    ScheduleReport report = CampaignScheduler(config).run();
    ASSERT_GT(report.dossiersWritten, 0u);
    size_t replayed = 0;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(config.dossierDir)) {
        fs::path repro = entry.path() / "repro.sql";
        ASSERT_TRUE(fs::exists(repro)) << repro;
        std::string details;
        EXPECT_TRUE(replayReproFile(repro.string(), &details))
            << repro << ": " << details;
        ++replayed;
    }
    EXPECT_EQ(replayed, report.dossiersWritten);
}

TEST_F(TraceIntegrationTest, DossierDirectoryHoldsAllArtifacts)
{
    SchedulerConfig config = sliceConfig(1, 2);
    config.dossierDir = path("dossiers");
    CampaignScheduler(config).run();
    auto set = dossierSet(config.dossierDir);
    ASSERT_FALSE(set.empty());
    fs::path one = fs::path(config.dossierDir) / set.begin()->first;
    for (const char *leaf :
         {"repro.sql", "dossier.json", "feedback.json", "events.jsonl",
          "metrics.json"}) {
        EXPECT_TRUE(fs::exists(one / leaf)) << leaf;
    }
    std::string dossier_json = readFile(one / "dossier.json");
    EXPECT_NE(dossier_json.find("\"schema\": \"sqlpp.dossier.v1\""),
              std::string::npos);
    EXPECT_NE(dossier_json.find("\"id\": \"" + set.begin()->first),
              std::string::npos);
    // The dossier records which pipeline found the bug; a campaign in
    // the default mode writes the optimized mode name.
    EXPECT_NE(dossier_json.find("\"execMode\": \"optimized\""),
              std::string::npos);
}

TEST_F(TraceIntegrationTest, ReproRoundTripsThroughTheParser)
{
    BugCase bug;
    bug.dialect = "sqlite-like";
    bug.oracle = "TLP";
    bug.setup = {"CREATE TABLE t0 (c0 INT)",
                 "INSERT INTO t0 VALUES (1)"};
    bug.baseText = "SELECT * FROM t0";
    bug.predicateText = "t0.c0 > 0";
    bug.execMode = "batch";
    std::string repro_path = path("repro.sql");
    {
        std::ofstream out(repro_path, std::ios::binary);
        out << renderReproSql(bug);
    }
    auto parsed = parseReproFile(repro_path);
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    EXPECT_EQ(parsed.value().dialect, bug.dialect);
    EXPECT_EQ(parsed.value().oracle, bug.oracle);
    EXPECT_EQ(parsed.value().setup, bug.setup);
    EXPECT_EQ(parsed.value().baseText, bug.baseText);
    EXPECT_EQ(parsed.value().predicateText, bug.predicateText);
    // Replay must re-run the bug under the pipeline that found it.
    EXPECT_EQ(parsed.value().execMode, "batch");
    // The id hashes the replayed identity, so it survives the trip.
    // execMode is deliberately excluded: the same logic bug found by
    // either pipeline is one case, not two.
    EXPECT_EQ(bugCaseId(parsed.value()), bugCaseId(bug));
}

TEST_F(TraceIntegrationTest, LegacyReproWithoutModeLineStillParses)
{
    // Repro files written before execMode existed carry no "-- mode:"
    // line; they parse with an empty mode and replay under the
    // default (optimized) pipeline.
    BugCase bug;
    bug.dialect = "sqlite-like";
    bug.oracle = "NOREC";
    bug.setup = {"CREATE TABLE t0 (c0 INT)"};
    bug.baseText = "SELECT * FROM t0";
    bug.predicateText = "t0.c0 IS NULL";
    ASSERT_TRUE(bug.execMode.empty());
    std::string rendered = renderReproSql(bug);
    EXPECT_EQ(rendered.find("-- mode:"), std::string::npos);
    std::string repro_path = path("repro.sql");
    {
        std::ofstream out(repro_path, std::ios::binary);
        out << rendered;
    }
    auto parsed = parseReproFile(repro_path);
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    EXPECT_TRUE(parsed.value().execMode.empty());
    EXPECT_EQ(bugCaseId(parsed.value()), bugCaseId(bug));
}

TEST_F(TraceIntegrationTest, CurveSamplesAreDeterministic)
{
    auto run = [] {
        CampaignConfig config;
        config.dialect = "cratedb-like";
        config.seed = 21;
        config.checks = 300;
        config.setupStatements = 40;
        config.curveInterval = 50;
        config.feedback.updateInterval = 100;
        config.feedback.ddlFailureLimit = 6;
        CampaignRunner runner(config);
        return runner.run();
    };
    CampaignStats first = run();
    CampaignStats second = run();
    // One sample each time checksAttempted crosses a multiple of the
    // interval (generation misses keep attempted below the loop count).
    ASSERT_FALSE(first.curve.empty());
    EXPECT_EQ(first.curve.size(), first.checksAttempted / 50);
    EXPECT_TRUE(first == second);
    uint64_t cum_attempted = 0;
    uint64_t cum_valid = 0;
    for (size_t i = 0; i < first.curve.size(); ++i) {
        const CurveSample &sample = first.curve[i];
        EXPECT_EQ(sample.tick, (i + 1) * 50);
        cum_attempted += sample.windowAttempted;
        cum_valid += sample.windowValid;
        // Cumulative counters are exactly the window sums so far.
        EXPECT_EQ(sample.cumAttempted, cum_attempted);
        EXPECT_EQ(sample.cumValid, cum_valid);
        EXPECT_LE(sample.windowValid, sample.windowAttempted);
    }
    EXPECT_LE(first.curve.back().cumAttempted, first.checksAttempted);
}

TEST_F(TraceIntegrationTest, CurveSurvivesCheckpointRoundTrip)
{
    CampaignConfig config;
    config.dialect = "sqlite-like";
    config.seed = 3;
    config.checks = 200;
    config.setupStatements = 40;
    config.curveInterval = 40;
    config.feedback.updateInterval = 100;
    CampaignRunner runner(config);
    CampaignStats stats = runner.run();
    ASSERT_FALSE(stats.curve.empty());

    KvStore payload = checkpointShard(stats, runner.feedback(),
                                      runner.registry(), 0, 0.0);
    RestoredShard restored;
    Status status = restoreShard(payload, config.feedback, restored);
    ASSERT_TRUE(status.isOk()) << status.toString();
    // CampaignStats::operator== covers the curve vector.
    EXPECT_TRUE(restored.stats == stats);
    ASSERT_EQ(restored.stats.curve.size(), stats.curve.size());
    EXPECT_TRUE(restored.stats.curve.back() == stats.curve.back());
}

TEST_F(TraceIntegrationTest, CurveDisabledByDefault)
{
    CampaignConfig config;
    config.dialect = "sqlite-like";
    config.seed = 3;
    config.checks = 60;
    config.setupStatements = 30;
    CampaignRunner runner(config);
    CampaignStats stats = runner.run();
    EXPECT_TRUE(stats.curve.empty());
}

#ifndef SQLPP_NO_TRACE
TEST_F(TraceIntegrationTest, ShardsRecordIntoTheirOwnLanes)
{
    CampaignScheduler(sliceConfig(2, 3)).run();
    TraceRecorder &recorder = TraceRecorder::instance();
    for (size_t shard = 0; shard < 3; ++shard) {
        size_t lane = TraceRecorder::laneForShardIndex(shard);
        EXPECT_GT(recorder.laneRecorded(lane), 0u) << shard;
        auto events = recorder.laneEvents(lane);
        ASSERT_FALSE(events.empty());
        EXPECT_EQ(events.front().type, TraceEventType::ShardStarted);
        EXPECT_EQ(recorder.laneLabel(lane),
                  "slice" + std::to_string(shard));
    }
}

TEST_F(TraceIntegrationTest, CurveSamplesEmitTraceEvents)
{
    CampaignConfig config;
    config.dialect = "sqlite-like";
    config.seed = 3;
    config.checks = 100;
    config.setupStatements = 30;
    config.curveInterval = 25;
    config.feedback.updateInterval = 50;
    CampaignRunner runner(config);
    CampaignStats stats = runner.run();
    ASSERT_FALSE(stats.curve.empty());
    auto events = TraceRecorder::instance().laneEvents(0);
    size_t samples = 0;
    for (const TraceEvent &event : events)
        samples += event.type == TraceEventType::CurveSample ? 1 : 0;
    // Ring overflow may drop the oldest samples, never add extras.
    EXPECT_GE(samples, 1u);
    EXPECT_LE(samples, stats.curve.size());
}
#endif

} // namespace
} // namespace sqlpp
