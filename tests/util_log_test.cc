/**
 * @file
 * Tests for the buffered leveled logger (util/log.h): Debug/Info
 * buffering with threshold flush, Warn/Error write-through that drains
 * queued lines in order, flushLogs()/pendingLogBytes()/setLogSink(),
 * CLI level-name parsing, and the regression test for the
 * watchdog-abandonment message loss — buffered lines queued before a
 * shard is abandoned must reach the sink.
 */
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/campaign.h"
#include "util/log.h"

namespace sqlpp {
namespace {

/**
 * Installs a capturing sink and restores stderr + Warn level on exit,
 * so tests never leak state into each other.
 */
class LogTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setLogLevel(LogLevel::Debug);
        setLogSink([this](const std::string &text) {
            captured_ += text;
        });
    }

    void TearDown() override
    {
        setLogSink(nullptr);
        setLogLevel(LogLevel::Warn);
    }

    std::string captured_;
};

TEST_F(LogTest, DebugAndInfoAreBufferedNotEmitted)
{
    logDebug("first");
    logInfo("second");
    EXPECT_TRUE(captured_.empty());
    EXPECT_GT(pendingLogBytes(), 0u);
    flushLogs();
    EXPECT_EQ(captured_, "[DEBUG] first\n[INFO] second\n");
    EXPECT_EQ(pendingLogBytes(), 0u);
}

TEST_F(LogTest, BufferFlushesAtThreshold)
{
    std::string filler(512, 'x');
    size_t lines = 0;
    while (captured_.empty() && lines < 64) {
        logInfo(filler);
        ++lines;
    }
    // The threshold (8 KiB) trips well before 64 half-KiB lines.
    EXPECT_LT(lines, 64u);
    EXPECT_NE(captured_.find("[INFO] " + filler), std::string::npos);
    EXPECT_EQ(pendingLogBytes(), 0u);
}

TEST_F(LogTest, WarnDrainsQueuedLinesInOrderThenWritesThrough)
{
    logInfo("queued");
    logWarn("urgent");
    EXPECT_EQ(captured_, "[INFO] queued\n[WARN] urgent\n");
    EXPECT_EQ(pendingLogBytes(), 0u);
}

TEST_F(LogTest, ErrorWritesThroughImmediately)
{
    logError("boom");
    EXPECT_EQ(captured_, "[ERROR] boom\n");
}

TEST_F(LogTest, LevelFiltersBeforeBuffering)
{
    setLogLevel(LogLevel::Warn);
    logDebug("hidden");
    logInfo("hidden too");
    EXPECT_EQ(pendingLogBytes(), 0u);
    setLogLevel(LogLevel::Silent);
    logError("also hidden");
    flushLogs();
    EXPECT_TRUE(captured_.empty());
}

TEST_F(LogTest, SwappingTheSinkFlushesToTheOldSinkFirst)
{
    logInfo("belongs to old sink");
    std::string second;
    setLogSink([&second](const std::string &text) { second += text; });
    flushLogs();
    EXPECT_EQ(captured_, "[INFO] belongs to old sink\n");
    EXPECT_TRUE(second.empty());
    logWarn("belongs to new sink");
    EXPECT_EQ(second, "[WARN] belongs to new sink\n");
    setLogSink(nullptr);
}

TEST(LogLevelNameTest, ParsesKnownNamesCaseInsensitively)
{
    EXPECT_EQ(logLevelFromName("quiet"), LogLevel::Silent);
    EXPECT_EQ(logLevelFromName("silent"), LogLevel::Silent);
    EXPECT_EQ(logLevelFromName("ERROR"), LogLevel::Error);
    EXPECT_EQ(logLevelFromName("Warn"), LogLevel::Warn);
    EXPECT_EQ(logLevelFromName("warning"), LogLevel::Warn);
    EXPECT_EQ(logLevelFromName("info"), LogLevel::Info);
    EXPECT_EQ(logLevelFromName("DEBUG"), LogLevel::Debug);
    EXPECT_FALSE(logLevelFromName("verbose").has_value());
    EXPECT_FALSE(logLevelFromName("").has_value());
}

/**
 * Regression: buffered Info lines written right before the watchdog
 * abandoned a shard used to sit in the line buffer forever — the
 * campaign returned without another Warn/Error to drain them, so the
 * abandonment context was silently lost. The abandonment path now
 * calls flushLogs(); everything queued before the deadline fired must
 * be visible in the sink once run() returns.
 */
TEST_F(LogTest, WatchdogAbandonmentFlushesBufferedLines)
{
    logInfo("context line before the campaign");
    ASSERT_GT(pendingLogBytes(), 0u);

    CampaignConfig config;
    config.dialect = "sqlite-like";
    config.checks = 1u << 20; // would run far past the deadline
    config.setupStatements = 20;
    config.deadlineSeconds = 0.05;
    CampaignRunner runner(config);
    CampaignStats stats = runner.run();
    ASSERT_EQ(stats.shardsAbandoned, 1u);

    EXPECT_EQ(pendingLogBytes(), 0u)
        << "abandonment must flush the buffer";
    EXPECT_NE(captured_.find("context line before the campaign"),
              std::string::npos);
    EXPECT_NE(captured_.find("abandoning shard"), std::string::npos)
        << "the abandonment warning itself should be in the sink; "
           "got: " << captured_;
}

} // namespace
} // namespace sqlpp
