/**
 * @file
 * Reducer tests: setup-statement elimination and predicate shrinking,
 * both against synthetic replay predicates and a real buggy dialect.
 */
#include <gtest/gtest.h>

#include "core/campaign.h"
#include "core/reducer.h"

namespace sqlpp {
namespace {

TEST(ReducerTest, DropsIrrelevantSetupStatements)
{
    BugCase bug;
    bug.setup = {"KEEP-1", "junk-a", "KEEP-2", "junk-b", "junk-c"};
    bug.predicateText = "TRUE";
    // Bug "reproduces" iff both KEEP statements are present.
    auto replay = [](const BugCase &candidate) {
        int keeps = 0;
        for (const std::string &statement : candidate.setup) {
            if (statement.rfind("KEEP", 0) == 0)
                ++keeps;
        }
        return keeps == 2;
    };
    ReduceStats stats = reduceBugCase(bug, replay);
    EXPECT_EQ(stats.setupBefore, 5u);
    EXPECT_EQ(stats.setupAfter, 2u);
    ASSERT_EQ(bug.setup.size(), 2u);
    EXPECT_EQ(bug.setup[0], "KEEP-1");
    EXPECT_EQ(bug.setup[1], "KEEP-2");
}

TEST(ReducerTest, ShrinksPredicateToRelevantCore)
{
    BugCase bug;
    bug.predicateText =
        "((c0 > 5) AND ((c1 LIKE 'x%') OR (SIN(c0) = 9)))";
    // Bug reproduces whenever the predicate still mentions c0 > 5.
    auto replay = [](const BugCase &candidate) {
        return candidate.predicateText.find("c0 > 5") !=
               std::string::npos;
    };
    ReduceStats stats = reduceBugCase(bug, replay);
    EXPECT_LT(stats.predicateNodesAfter, stats.predicateNodesBefore);
    EXPECT_EQ(bug.predicateText, "(c0 > 5)");
}

TEST(ReducerTest, LeavesUnreducibleCaseIntact)
{
    BugCase bug;
    bug.setup = {"A", "B"};
    bug.predicateText = "(c0 = 1)";
    // Everything is load-bearing.
    auto replay = [](const BugCase &candidate) {
        return candidate.setup.size() == 2 &&
               candidate.predicateText == "(c0 = 1)";
    };
    ReduceStats stats = reduceBugCase(bug, replay);
    EXPECT_EQ(bug.setup.size(), 2u);
    EXPECT_EQ(stats.setupAfter, 2u);
    EXPECT_EQ(bug.predicateText, "(c0 = 1)");
}

TEST(ReducerTest, ContinuesScanInsteadOfRestarting)
{
    // Regression: phase 1 used to restart from index 0 after every
    // successful elimination, re-replaying prefixes already proven
    // necessary. With a necessary head statement and k junk tails the
    // old scan cost O(k^2) replays; the fixed scan is linear.
    BugCase bug;
    bug.setup.push_back("KEEP");
    for (int i = 0; i < 10; ++i)
        bug.setup.push_back("junk-" + std::to_string(i));
    bug.predicateText = "TRUE";
    auto replay = [](const BugCase &candidate) {
        for (const std::string &statement : candidate.setup) {
            if (statement == "KEEP")
                return true;
        }
        return false;
    };
    ReduceStats stats = reduceBugCase(bug, replay);
    ASSERT_EQ(bug.setup.size(), 1u);
    EXPECT_EQ(bug.setup[0], "KEEP");
    // Pass 1: 1 failed KEEP probe + 10 eliminations; pass 2 (fixed
    // point): 1 failed probe. The old restart-from-zero scan needed a
    // KEEP re-probe before every elimination (~22 replays).
    EXPECT_LE(stats.replays, 12u);
}

TEST(ReducerTest, TxnBlocksAreAtomicEliminationUnits)
{
    // A BEGIN … COMMIT/ROLLBACK block is removed (or kept) whole.
    // The replay predicate rejects any candidate with unbalanced
    // transaction control, so per-statement elimination would wedge:
    // dropping only "BEGIN" or only "COMMIT" never reproduces, and the
    // block's interior statements would survive as dead weight.
    BugCase bug;
    bug.setup = {
        "CREATE TABLE t0 (a INT)",       // load-bearing
        "BEGIN",                         // block 1: irrelevant
        "INSERT INTO t9 VALUES (1)",
        "INSERT INTO t9 VALUES (2)",
        "COMMIT",
        "begin transaction",             // block 2: irrelevant, mixed
        "INSERT INTO t9 VALUES (3)",     // case + ROLLBACK TO inside
        "ROLLBACK TO sp0",
        "Rollback",
        "INSERT INTO t0 VALUES (7)",     // load-bearing
    };
    bug.predicateText = "TRUE";
    auto replay = [](const BugCase &candidate) {
        int depth = 0;
        bool sawTable = false, sawInsert = false;
        for (const std::string &statement : candidate.setup) {
            if (statement == "BEGIN" ||
                statement == "begin transaction") {
                if (depth != 0)
                    return false; // nested BEGIN: malformed
                depth = 1;
            } else if (statement == "COMMIT" ||
                       statement == "Rollback") {
                if (depth != 1)
                    return false; // dangling COMMIT/ROLLBACK
                depth = 0;
            } else if (statement.rfind("CREATE TABLE t0", 0) == 0) {
                sawTable = true;
            } else if (statement.rfind("INSERT INTO t0", 0) == 0) {
                sawInsert = true;
            }
        }
        return depth == 0 && sawTable && sawInsert;
    };
    ASSERT_TRUE(replay(bug));
    ReduceStats stats = reduceBugCase(bug, replay);
    EXPECT_EQ(stats.setupBefore, 10u);
    ASSERT_EQ(bug.setup.size(), 2u);
    EXPECT_EQ(bug.setup[0], "CREATE TABLE t0 (a INT)");
    EXPECT_EQ(bug.setup[1], "INSERT INTO t0 VALUES (7)");
}

TEST(ReducerTest, UnterminatedTxnBlockExtendsToEnd)
{
    // An unmatched BEGIN swallows the rest of the setup as one unit;
    // the reducer either drops the whole tail or keeps it intact, but
    // never leaves a dangling BEGIN over a subset of its statements.
    BugCase bug;
    bug.setup = {
        "KEEP",
        "BEGIN",
        "INSERT INTO t9 VALUES (1)",
        "INSERT INTO t9 VALUES (2)",
    };
    bug.predicateText = "TRUE";
    auto replay = [](const BugCase &candidate) {
        for (const std::string &statement : candidate.setup) {
            if (statement == "KEEP")
                return true;
        }
        return false;
    };
    ReduceStats stats = reduceBugCase(bug, replay);
    EXPECT_EQ(stats.setupAfter, 1u);
    ASSERT_EQ(bug.setup.size(), 1u);
    EXPECT_EQ(bug.setup[0], "KEEP");
}

TEST(ReducerTest, RespectsReplayBudget)
{
    BugCase bug;
    for (int i = 0; i < 50; ++i)
        bug.setup.push_back("junk-" + std::to_string(i));
    bug.setup.push_back("KEEP");
    bug.predicateText = "TRUE";
    size_t replays = 0;
    auto replay = [&replays](const BugCase &candidate) {
        ++replays;
        for (const std::string &statement : candidate.setup) {
            if (statement == "KEEP")
                return true;
        }
        return false;
    };
    ReduceStats stats = reduceBugCase(bug, replay, /*max_replays=*/30);
    EXPECT_LE(stats.replays, 30u);
}

TEST(ReducerTest, EndToEndAgainstBuggyDialect)
{
    // Build a real bug case on the sqlite-like dialect (Listing 3's
    // context-dependent comparison) padded with irrelevant setup, then
    // reduce it with the campaign replay function.
    const DialectProfile *sqlite = findDialect("sqlite-like");
    ASSERT_NE(sqlite, nullptr);
    BugCase bug;
    bug.dialect = sqlite->name;
    bug.oracle = "TLP";
    bug.setup = {
        "CREATE TABLE t9 (z INT)",          // irrelevant
        "CREATE TABLE t0 (c0 TEXT)",        // load-bearing
        "INSERT INTO t9 VALUES (5)",        // irrelevant
        "INSERT INTO t0 (c0) VALUES (1)",   // load-bearing
        "CREATE INDEX i9 ON t9(z)",         // irrelevant
    };
    bug.baseText = "SELECT * FROM t0";
    bug.predicateText = "((t0.c0 = REPLACE(1, '', 0)) OR FALSE)";
    ASSERT_TRUE(CampaignRunner::reproduces(*sqlite, bug));

    ReduceStats stats = reduceBugCase(bug, [&](const BugCase &candidate) {
        return CampaignRunner::reproduces(*sqlite, candidate);
    });
    EXPECT_EQ(stats.setupAfter, 2u);
    EXPECT_LE(stats.predicateNodesAfter, stats.predicateNodesBefore);
    // The reduced case still reproduces.
    EXPECT_TRUE(CampaignRunner::reproduces(*sqlite, bug));
    // The irrelevant table is gone.
    for (const std::string &statement : bug.setup)
        EXPECT_EQ(statement.find("t9"), std::string::npos) << statement;
}

TEST(ReducerTest, ReducedReproCarriesFullQueryList)
{
    // Regression: a reduced BugCase used to keep the query list from
    // the *original* detection, whose statement texts no longer match
    // the shrunken predicate. The campaign now replays the reduced
    // case and stores the replay's queries, so the repro is
    // self-contained — including probes that failed mid-check (the
    // NoREC IS TRUE attempt on a dialect without it also used to be
    // dropped entirely).
    const DialectProfile *sqlite = findDialect("sqlite-like");
    ASSERT_NE(sqlite, nullptr);
    BugCase bug;
    bug.dialect = sqlite->name;
    bug.oracle = "TLP";
    bug.setup = {
        "CREATE TABLE t9 (z INT)",          // irrelevant
        "CREATE TABLE t0 (c0 TEXT)",        // load-bearing
        "INSERT INTO t0 (c0) VALUES (1)",   // load-bearing
    };
    bug.baseText = "SELECT * FROM t0";
    bug.predicateText = "((t0.c0 = REPLACE(1, '', 0)) OR FALSE)";
    ASSERT_TRUE(CampaignRunner::reproduces(*sqlite, bug));

    (void)reduceBugCase(bug, [&](const BugCase &candidate) {
        return CampaignRunner::reproduces(*sqlite, candidate);
    });

    // Replaying the reduced case yields the exact statements a repro
    // report needs; every one must mention the reduced predicate's
    // core, not the original "OR FALSE" padding.
    OracleResult replay;
    ASSERT_TRUE(CampaignRunner::reproduces(*sqlite, bug, &replay));
    EXPECT_EQ(replay.outcome, OracleOutcome::Bug);
    ASSERT_FALSE(replay.queries.empty());
    for (const std::string &query : replay.queries)
        EXPECT_EQ(query.find("OR FALSE"), std::string::npos) << query;
}

TEST(ReducerTest, CampaignBugsRecordQueries)
{
    // End-to-end: every bug a campaign reports carries the statements
    // that demonstrate it, even after reduction rewrote the case.
    CampaignConfig config;
    config.dialect = "sqlite-like";
    config.seed = 7;
    config.checks = 200;
    config.setupStatements = 30;
    config.oracles = {"TLP", "NOREC", "PQS"};
    CampaignRunner runner(config);
    CampaignStats stats = runner.run();
    ASSERT_GT(stats.prioritizedBugs.size(), 0u);
    for (const BugCase &bug : stats.prioritizedBugs) {
        EXPECT_FALSE(bug.queries.empty())
            << bug.oracle << " repro lost its query list";
    }
}

} // namespace
} // namespace sqlpp
