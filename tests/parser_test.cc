/**
 * @file
 * Unit tests for the SQL parser: statement forms, expression precedence,
 * error staging, and print→parse round trips.
 */
#include <gtest/gtest.h>

#include "parser/parser.h"
#include "sqlir/printer.h"

namespace sqlpp {
namespace {

StmtPtr
parseOk(const std::string &sql)
{
    auto result = parseStatement(sql);
    EXPECT_TRUE(result.isOk()) << sql << " -> " << result.status().toString();
    return result.isOk() ? result.takeValue() : nullptr;
}

ExprPtr
parseExprOk(const std::string &sql)
{
    auto result = parseExpression(sql);
    EXPECT_TRUE(result.isOk()) << sql << " -> " << result.status().toString();
    return result.isOk() ? result.takeValue() : nullptr;
}

TEST(ParserTest, CreateTableBasic)
{
    StmtPtr stmt = parseOk("CREATE TABLE t0 (c0 INT, c1 TEXT NOT NULL)");
    ASSERT_NE(stmt, nullptr);
    ASSERT_EQ(stmt->kind(), StmtKind::CreateTable);
    auto *create = static_cast<CreateTableStmt *>(stmt.get());
    EXPECT_EQ(create->name, "t0");
    ASSERT_EQ(create->columns.size(), 2u);
    EXPECT_EQ(create->columns[0].type, DataType::Int);
    EXPECT_TRUE(create->columns[1].notNull);
}

TEST(ParserTest, CreateTableConstraints)
{
    StmtPtr stmt = parseOk(
        "CREATE TABLE IF NOT EXISTS t0 "
        "(c0 INTEGER PRIMARY KEY, c1 BOOLEAN UNIQUE NOT NULL)");
    auto *create = static_cast<CreateTableStmt *>(stmt.get());
    EXPECT_TRUE(create->ifNotExists);
    EXPECT_TRUE(create->columns[0].primaryKey);
    EXPECT_TRUE(create->columns[1].unique);
    EXPECT_TRUE(create->columns[1].notNull);
    EXPECT_EQ(create->columns[1].type, DataType::Bool);
}

TEST(ParserTest, CreateIndexForms)
{
    StmtPtr stmt = parseOk(
        "CREATE UNIQUE INDEX i0 ON t0(c0, c1) WHERE c0 > 5");
    auto *index = static_cast<CreateIndexStmt *>(stmt.get());
    EXPECT_TRUE(index->unique);
    EXPECT_EQ(index->table, "t0");
    EXPECT_EQ(index->columns.size(), 2u);
    ASSERT_NE(index->where, nullptr);

    StmtPtr plain = parseOk("CREATE INDEX i1 ON t0(c0)");
    EXPECT_FALSE(static_cast<CreateIndexStmt *>(plain.get())->unique);
}

TEST(ParserTest, CreateView)
{
    StmtPtr stmt = parseOk("CREATE VIEW v0(a, b) AS SELECT c0, c1 FROM t0");
    auto *view = static_cast<CreateViewStmt *>(stmt.get());
    EXPECT_EQ(view->name, "v0");
    EXPECT_EQ(view->columnNames.size(), 2u);
    ASSERT_NE(view->select, nullptr);
    EXPECT_EQ(view->select->items.size(), 2u);
}

TEST(ParserTest, InsertMultiRow)
{
    StmtPtr stmt = parseOk(
        "INSERT INTO t0 (c0, c1) VALUES (1, 'a'), (NULL, 'b')");
    auto *insert = static_cast<InsertStmt *>(stmt.get());
    EXPECT_EQ(insert->table, "t0");
    EXPECT_EQ(insert->columns.size(), 2u);
    ASSERT_EQ(insert->rows.size(), 2u);
    EXPECT_EQ(insert->rows[1].size(), 2u);
}

TEST(ParserTest, InsertOrIgnore)
{
    StmtPtr stmt = parseOk("INSERT OR IGNORE INTO t0 VALUES (1)");
    EXPECT_TRUE(static_cast<InsertStmt *>(stmt.get())->orIgnore);
}

TEST(ParserTest, AnalyzeForms)
{
    EXPECT_EQ(parseOk("ANALYZE")->kind(), StmtKind::Analyze);
    StmtPtr stmt = parseOk("ANALYZE t0");
    EXPECT_EQ(static_cast<AnalyzeStmt *>(stmt.get())->table, "t0");
}

TEST(ParserTest, DropForms)
{
    EXPECT_EQ(parseOk("DROP TABLE t0")->kind(), StmtKind::DropTable);
    EXPECT_EQ(parseOk("DROP VIEW v0")->kind(), StmtKind::DropView);
    EXPECT_EQ(parseOk("DROP INDEX i0")->kind(), StmtKind::DropIndex);
    StmtPtr stmt = parseOk("DROP TABLE IF EXISTS t0");
    EXPECT_TRUE(static_cast<DropStmt *>(stmt.get())->ifExists);
}

TEST(ParserTest, SelectMinimal)
{
    StmtPtr stmt = parseOk("SELECT 1");
    auto *select = static_cast<SelectStmt *>(stmt.get());
    EXPECT_TRUE(select->from.empty());
    EXPECT_EQ(select->items.size(), 1u);
}

TEST(ParserTest, SelectFull)
{
    StmtPtr stmt = parseOk(
        "SELECT DISTINCT t0.c0 AS x, COUNT(*) FROM t0 "
        "LEFT OUTER JOIN t1 ON t0.c0 = t1.c0 "
        "WHERE t0.c0 IS NOT NULL GROUP BY t0.c0 HAVING COUNT(*) > 1 "
        "ORDER BY t0.c0 DESC LIMIT 10 OFFSET 5");
    auto *select = static_cast<SelectStmt *>(stmt.get());
    EXPECT_TRUE(select->distinct);
    EXPECT_EQ(select->items[0].alias, "x");
    ASSERT_EQ(select->joins.size(), 1u);
    EXPECT_EQ(select->joins[0].type, JoinType::Left);
    ASSERT_NE(select->where, nullptr);
    EXPECT_EQ(select->groupBy.size(), 1u);
    ASSERT_NE(select->having, nullptr);
    EXPECT_FALSE(select->orderBy[0].ascending);
    EXPECT_EQ(select->limit, 10);
    EXPECT_EQ(select->offset, 5);
}

TEST(ParserTest, AllJoinTypes)
{
    struct Case { const char *sql; JoinType type; };
    const Case cases[] = {
        {"SELECT * FROM t0 INNER JOIN t1 ON 1", JoinType::Inner},
        {"SELECT * FROM t0 JOIN t1 ON 1", JoinType::Inner},
        {"SELECT * FROM t0 LEFT JOIN t1 ON 1", JoinType::Left},
        {"SELECT * FROM t0 RIGHT JOIN t1 ON 1", JoinType::Right},
        {"SELECT * FROM t0 FULL JOIN t1 ON 1", JoinType::Full},
        {"SELECT * FROM t0 CROSS JOIN t1", JoinType::Cross},
        {"SELECT * FROM t0 NATURAL JOIN t1", JoinType::Natural},
    };
    for (const Case &c : cases) {
        StmtPtr stmt = parseOk(c.sql);
        auto *select = static_cast<SelectStmt *>(stmt.get());
        ASSERT_EQ(select->joins.size(), 1u) << c.sql;
        EXPECT_EQ(select->joins[0].type, c.type) << c.sql;
    }
}

TEST(ParserTest, CommaSeparatedFrom)
{
    StmtPtr stmt = parseOk("SELECT * FROM t0, t1 AS a, t2 b");
    auto *select = static_cast<SelectStmt *>(stmt.get());
    ASSERT_EQ(select->from.size(), 3u);
    EXPECT_EQ(select->from[1].alias, "a");
    EXPECT_EQ(select->from[2].alias, "b");
}

TEST(ParserTest, DerivedTableRequiresAlias)
{
    EXPECT_FALSE(parseStatement("SELECT * FROM (SELECT 1)").isOk());
    StmtPtr stmt = parseOk("SELECT * FROM (SELECT 1 AS x) AS sub0");
    auto *select = static_cast<SelectStmt *>(stmt.get());
    ASSERT_NE(select->from[0].subquery, nullptr);
    EXPECT_EQ(select->from[0].alias, "sub0");
}

TEST(ParserTest, PrecedenceOrAndNot)
{
    // a OR b AND NOT c parses as a OR (b AND (NOT c)).
    ExprPtr expr = parseExprOk("a OR b AND NOT c");
    EXPECT_EQ(printExpr(*expr), "(a OR (b AND (NOT c)))");
}

TEST(ParserTest, PrecedenceArithmeticOverComparison)
{
    ExprPtr expr = parseExprOk("1 + 2 * 3 < 4");
    EXPECT_EQ(printExpr(*expr), "((1 + (2 * 3)) < 4)");
}

TEST(ParserTest, PrecedenceBitwise)
{
    ExprPtr expr = parseExprOk("1 | 2 & 3 << 4");
    EXPECT_EQ(printExpr(*expr), "(1 | (2 & (3 << 4)))");
}

TEST(ParserTest, IsNullFamily)
{
    EXPECT_EQ(printExpr(*parseExprOk("c0 IS NULL")), "(c0 IS NULL)");
    EXPECT_EQ(printExpr(*parseExprOk("c0 IS NOT NULL")),
              "(c0 IS NOT NULL)");
    EXPECT_EQ(printExpr(*parseExprOk("c0 IS TRUE")), "(c0 IS TRUE)");
    EXPECT_EQ(printExpr(*parseExprOk("c0 IS NOT FALSE")),
              "(c0 IS NOT FALSE)");
}

TEST(ParserTest, IsDistinctFrom)
{
    EXPECT_EQ(printExpr(*parseExprOk("a IS DISTINCT FROM b")),
              "(a IS DISTINCT FROM b)");
    EXPECT_EQ(printExpr(*parseExprOk("a IS NOT DISTINCT FROM b")),
              "(a IS NOT DISTINCT FROM b)");
}

TEST(ParserTest, BetweenAndNotBetween)
{
    EXPECT_EQ(printExpr(*parseExprOk("c0 BETWEEN 1 AND 3")),
              "(c0 BETWEEN 1 AND 3)");
    EXPECT_EQ(printExpr(*parseExprOk("c0 NOT BETWEEN 1 AND 3")),
              "(c0 NOT BETWEEN 1 AND 3)");
}

TEST(ParserTest, InListAndSubquery)
{
    EXPECT_EQ(printExpr(*parseExprOk("c0 IN (1, 2)")), "(c0 IN (1, 2))");
    EXPECT_EQ(printExpr(*parseExprOk("c0 NOT IN (SELECT 1)")),
              "(c0 NOT IN (SELECT 1))");
}

TEST(ParserTest, ExistsForms)
{
    EXPECT_EQ(printExpr(*parseExprOk("EXISTS (SELECT 1)")),
              "(EXISTS (SELECT 1))");
    EXPECT_EQ(printExpr(*parseExprOk("NOT EXISTS (SELECT 1)")),
              "(NOT EXISTS (SELECT 1))");
}

TEST(ParserTest, ScalarSubquery)
{
    EXPECT_EQ(printExpr(*parseExprOk("(SELECT 1) + 2")),
              "((SELECT 1) + 2)");
}

TEST(ParserTest, CaseForms)
{
    EXPECT_EQ(printExpr(*parseExprOk(
                  "CASE WHEN a THEN 1 ELSE 2 END")),
              "(CASE WHEN a THEN 1 ELSE 2 END)");
    EXPECT_EQ(printExpr(*parseExprOk("CASE c0 WHEN 1 THEN 2 END")),
              "(CASE c0 WHEN 1 THEN 2 END)");
}

TEST(ParserTest, CastForms)
{
    EXPECT_EQ(printExpr(*parseExprOk("CAST(c0 AS TEXT)")),
              "CAST(c0 AS TEXT)");
    EXPECT_FALSE(parseExpression("CAST(c0 AS BLOB)").isOk());
}

TEST(ParserTest, FunctionCalls)
{
    EXPECT_EQ(printExpr(*parseExprOk("nullif(a, b)")), "NULLIF(a, b)");
    EXPECT_EQ(printExpr(*parseExprOk("COUNT(*)")), "COUNT(*)");
    EXPECT_EQ(printExpr(*parseExprOk("SUM(DISTINCT c0)")),
              "SUM(DISTINCT c0)");
    EXPECT_EQ(printExpr(*parseExprOk("PI()")), "PI()");
}

TEST(ParserTest, NullSafeEqualsAndLike)
{
    EXPECT_EQ(printExpr(*parseExprOk("a <=> b")), "(a <=> b)");
    EXPECT_EQ(printExpr(*parseExprOk("a LIKE 'x%'")), "(a LIKE 'x%')");
    EXPECT_EQ(printExpr(*parseExprOk("a NOT LIKE 'x%'")),
              "(a NOT LIKE 'x%')");
    EXPECT_EQ(printExpr(*parseExprOk("a GLOB 'x*'")), "(a GLOB 'x*')");
}

TEST(ParserTest, ParenthesisedPostfix)
{
    EXPECT_EQ(printExpr(*parseExprOk("(a + b) IS NULL")),
              "((a + b) IS NULL)");
}

TEST(ParserTest, ErrorsAreSyntaxErrors)
{
    const char *bad[] = {
        "",
        "UPDATE t0 SET c0 = 1",  // unsupported statement kind
        "SELECT FROM t0",
        "CREATE TABLE (c0 INT)",
        "CREATE TABLE t0 (c0 BLOB)",
        "INSERT INTO t0",
        "SELECT 1 extra garbage (",
        "SELECT * FROM t0 LEFT JOIN t1",  // missing ON
        "CASE WHEN 1 THEN 2",             // not a statement
    };
    for (const char *sql : bad) {
        auto result = parseStatement(sql);
        EXPECT_FALSE(result.isOk()) << sql;
        if (!result.isOk()) {
            EXPECT_EQ(result.status().code(), ErrorCode::SyntaxError)
                << sql;
        }
    }
}

TEST(ParserTest, TransactionStatements)
{
    // Each accepted surface form and its canonical print, which must
    // itself re-parse to the same print (fixpoint).
    const std::pair<const char *, const char *> cases[] = {
        {"BEGIN", "BEGIN"},
        {"BEGIN TRANSACTION", "BEGIN"},
        {"begin transaction", "BEGIN"},
        {"COMMIT", "COMMIT"},
        {"COMMIT TRANSACTION", "COMMIT"},
        {"ROLLBACK", "ROLLBACK"},
        {"ROLLBACK TRANSACTION", "ROLLBACK"},
        {"SAVEPOINT sp0", "SAVEPOINT sp0"},
        {"ROLLBACK TO sp0", "ROLLBACK TO sp0"},
        {"ROLLBACK TO SAVEPOINT sp0", "ROLLBACK TO sp0"},
        {"ROLLBACK TRANSACTION TO SAVEPOINT sp0", "ROLLBACK TO sp0"},
        {"RELEASE sp0", "RELEASE sp0"},
        {"RELEASE SAVEPOINT sp0", "RELEASE sp0"},
    };
    for (const auto &[sql, canonical] : cases) {
        StmtPtr stmt = parseOk(sql);
        ASSERT_NE(stmt, nullptr) << sql;
        EXPECT_EQ(printStmt(*stmt), canonical) << sql;
        StmtPtr again = parseOk(printStmt(*stmt));
        ASSERT_NE(again, nullptr) << sql;
        EXPECT_EQ(printStmt(*again), canonical) << sql;
    }
    EXPECT_FALSE(parseStatement("SAVEPOINT").isOk());
    EXPECT_FALSE(parseStatement("RELEASE").isOk());
    EXPECT_FALSE(parseStatement("ROLLBACK TO").isOk());
}

TEST(ParserTest, TrailingSemicolonAccepted)
{
    EXPECT_NE(parseOk("SELECT 1;"), nullptr);
}

TEST(ParserTest, PrintParseRoundTrip)
{
    const char *queries[] = {
        "SELECT DISTINCT t0.c0 FROM t0 RIGHT JOIN t1 ON (t0.c0 = t1.c0) "
        "WHERE ((t0.c0 + 1) > 2) ORDER BY t0.c0 ASC LIMIT 3",
        "SELECT * FROM (SELECT 1 AS x) AS sub0 CROSS JOIN t0",
        "INSERT INTO t0 (c0) VALUES ((1 + 2)), (NULL)",
        "CREATE VIEW v0 AS SELECT (c0 IS NULL) AS a FROM t0",
        "SELECT (CASE WHEN (c0 <=> 1) THEN 'a' ELSE 'b' END) FROM t0",
        "SELECT * FROM t0 WHERE (c0 IN (SELECT c1 FROM t1))",
    };
    for (const char *sql : queries) {
        StmtPtr first = parseOk(sql);
        ASSERT_NE(first, nullptr) << sql;
        std::string printed = printStmt(*first);
        StmtPtr second = parseOk(printed);
        ASSERT_NE(second, nullptr) << printed;
        EXPECT_EQ(printStmt(*second), printed) << sql;
    }
}

} // namespace
} // namespace sqlpp
