/**
 * @file
 * Unit tests for KvStore persistence.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/persist.h"

namespace sqlpp {
namespace {

std::string
tempPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

TEST(KvStoreTest, PutGetRoundTrip)
{
    KvStore store;
    store.put("k", "v");
    ASSERT_TRUE(store.get("k").has_value());
    EXPECT_EQ(*store.get("k"), "v");
    EXPECT_FALSE(store.get("missing").has_value());
}

TEST(KvStoreTest, OverwriteReplaces)
{
    KvStore store;
    store.put("k", "v1");
    store.put("k", "v2");
    EXPECT_EQ(*store.get("k"), "v2");
    EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreTest, NumericHelpers)
{
    KvStore store;
    store.putDouble("d", 0.125);
    store.putInt("i", -7);
    EXPECT_DOUBLE_EQ(*store.getDouble("d"), 0.125);
    EXPECT_EQ(*store.getInt("i"), -7);
}

TEST(KvStoreTest, NumericParseRejectsGarbage)
{
    KvStore store;
    store.put("d", "not-a-number");
    EXPECT_FALSE(store.getDouble("d").has_value());
    EXPECT_FALSE(store.getInt("d").has_value());
    store.put("partial", "12x");
    EXPECT_FALSE(store.getInt("partial").has_value());
}

TEST(KvStoreTest, EraseRemoves)
{
    KvStore store;
    store.put("k", "v");
    store.erase("k");
    EXPECT_FALSE(store.get("k").has_value());
    store.erase("k"); // no-op
}

TEST(KvStoreTest, SaveLoadRoundTrip)
{
    std::string path = tempPath("sqlpp_kv_test1.txt");
    KvStore store;
    store.put("feature.SIN", "0.98");
    store.put("feature.INDEX", "0");
    store.put("with=equals", "a=b=c");
    ASSERT_TRUE(store.save(path).isOk());

    KvStore loaded;
    ASSERT_TRUE(loaded.load(path).isOk());
    EXPECT_EQ(loaded.size(), 3u);
    EXPECT_EQ(*loaded.get("feature.SIN"), "0.98");
    EXPECT_EQ(*loaded.get("with"), "equals=a=b=c");
    std::remove(path.c_str());
}

TEST(KvStoreTest, LoadMissingFileFails)
{
    KvStore store;
    EXPECT_FALSE(store.load("/nonexistent/path/xyz.kv").isOk());
}

TEST(KvStoreTest, LoadRejectsBadHeader)
{
    std::string path = tempPath("sqlpp_kv_test2.txt");
    {
        FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("wrong-header\nk=v\n", f);
        std::fclose(f);
    }
    KvStore store;
    EXPECT_FALSE(store.load(path).isOk());
    std::remove(path.c_str());
}

TEST(KvStoreTest, DoubleRoundTripPrecision)
{
    std::string path = tempPath("sqlpp_kv_test3.txt");
    KvStore store;
    double value = 1.0 / 3.0;
    store.putDouble("p", value);
    ASSERT_TRUE(store.save(path).isOk());
    KvStore loaded;
    ASSERT_TRUE(loaded.load(path).isOk());
    EXPECT_DOUBLE_EQ(*loaded.getDouble("p"), value);
    std::remove(path.c_str());
}

} // namespace
} // namespace sqlpp
