/**
 * @file
 * Unit tests for KvStore persistence.
 */
#include <gtest/gtest.h>

#include <clocale>
#include <cstdio>
#include <filesystem>

#include "util/persist.h"

namespace sqlpp {
namespace {

std::string
tempPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

TEST(KvStoreTest, PutGetRoundTrip)
{
    KvStore store;
    store.put("k", "v");
    ASSERT_TRUE(store.get("k").has_value());
    EXPECT_EQ(*store.get("k"), "v");
    EXPECT_FALSE(store.get("missing").has_value());
}

TEST(KvStoreTest, OverwriteReplaces)
{
    KvStore store;
    store.put("k", "v1");
    store.put("k", "v2");
    EXPECT_EQ(*store.get("k"), "v2");
    EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreTest, NumericHelpers)
{
    KvStore store;
    store.putDouble("d", 0.125);
    store.putInt("i", -7);
    EXPECT_DOUBLE_EQ(*store.getDouble("d"), 0.125);
    EXPECT_EQ(*store.getInt("i"), -7);
}

TEST(KvStoreTest, NumericParseRejectsGarbage)
{
    KvStore store;
    store.put("d", "not-a-number");
    EXPECT_FALSE(store.getDouble("d").has_value());
    EXPECT_FALSE(store.getInt("d").has_value());
    store.put("partial", "12x");
    EXPECT_FALSE(store.getInt("partial").has_value());
}

TEST(KvStoreTest, EraseRemoves)
{
    KvStore store;
    store.put("k", "v");
    store.erase("k");
    EXPECT_FALSE(store.get("k").has_value());
    store.erase("k"); // no-op
}

TEST(KvStoreTest, SaveLoadRoundTrip)
{
    std::string path = tempPath("sqlpp_kv_test1.txt");
    KvStore store;
    store.put("feature.SIN", "0.98");
    store.put("feature.INDEX", "0");
    store.put("with=equals", "a=b=c");
    ASSERT_TRUE(store.save(path).isOk());

    KvStore loaded;
    ASSERT_TRUE(loaded.load(path).isOk());
    EXPECT_EQ(loaded.size(), 3u);
    EXPECT_EQ(*loaded.get("feature.SIN"), "0.98");
    // Keys with '=' round-trip intact (operator feature names like
    // "OP_=" depend on this; the v1 format silently split them).
    ASSERT_TRUE(loaded.get("with=equals").has_value());
    EXPECT_EQ(*loaded.get("with=equals"), "a=b=c");
    std::remove(path.c_str());
}

TEST(KvStoreTest, EscapedCharactersRoundTrip)
{
    std::string path = tempPath("sqlpp_kv_escape.txt");
    KvStore store;
    store.put("OP_<=", "1");
    store.put("percent%key", "50%");
    store.put("multi\nline", "a\nb");
    ASSERT_TRUE(store.save(path).isOk());
    KvStore loaded;
    ASSERT_TRUE(loaded.load(path).isOk());
    EXPECT_EQ(*loaded.get("OP_<="), "1");
    EXPECT_EQ(*loaded.get("percent%key"), "50%");
    EXPECT_EQ(*loaded.get("multi\nline"), "a\nb");
    std::remove(path.c_str());
}

TEST(KvStoreTest, LoadsLegacyV1Files)
{
    std::string path = tempPath("sqlpp_kv_v1.txt");
    {
        FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("sqlancerpp-kv-v1\nfeature.SIN=0.5\n", f);
        std::fclose(f);
    }
    KvStore store;
    ASSERT_TRUE(store.load(path).isOk());
    EXPECT_EQ(*store.get("feature.SIN"), "0.5");
    std::remove(path.c_str());
}

TEST(KvStoreTest, SaveIsAtomicUnderWriteFailure)
{
    // Make the sibling temp path unwritable (a directory). The save
    // must fail without touching the existing target file — the
    // truncate-in-place bug destroyed it first and wrote nothing.
    std::string path = tempPath("sqlpp_kv_atomic.txt");
    KvStore original;
    original.put("k", "old");
    ASSERT_TRUE(original.save(path).isOk());

    std::filesystem::create_directory(path + ".tmp");
    KvStore updated;
    updated.put("k", "new");
    EXPECT_FALSE(updated.save(path).isOk());

    KvStore loaded;
    ASSERT_TRUE(loaded.load(path).isOk());
    EXPECT_EQ(*loaded.get("k"), "old");
    std::filesystem::remove(path + ".tmp");
    std::remove(path.c_str());
}

TEST(KvStoreTest, SaveLeavesNoTempFileBehind)
{
    std::string path = tempPath("sqlpp_kv_notmp.txt");
    KvStore store;
    store.put("k", "v");
    ASSERT_TRUE(store.save(path).isOk());
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
    std::remove(path.c_str());
}

TEST(KvStoreTest, LoadMissingFileFails)
{
    KvStore store;
    EXPECT_FALSE(store.load("/nonexistent/path/xyz.kv").isOk());
}

TEST(KvStoreTest, LoadRejectsBadHeader)
{
    std::string path = tempPath("sqlpp_kv_test2.txt");
    {
        FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("wrong-header\nk=v\n", f);
        std::fclose(f);
    }
    KvStore store;
    EXPECT_FALSE(store.load(path).isOk());
    std::remove(path.c_str());
}

TEST(KvStoreTest, NumericFormatIsLocaleIndependent)
{
    // Regardless of the active locale, doubles must serialize with '.'
    // and comma-decimal text must be rejected, or learned probabilities
    // saved under a de_DE-style locale fail to reload.
    KvStore store;
    store.putDouble("half", 0.5);
    EXPECT_EQ(*store.get("half"), "0.5");
    store.put("comma", "0,5");
    EXPECT_FALSE(store.getDouble("comma").has_value());
}

TEST(KvStoreTest, DoubleRoundTripUnderCommaDecimalLocale)
{
    // A de_DE-style locale makes printf("%g") emit "0,5" and stod stop
    // at the comma; KvStore must be immune. Skipped when no such
    // locale is installed (minimal containers ship only C/POSIX).
    const char *candidates[] = {"de_DE.UTF-8", "de_DE.utf8", "de_DE",
                                "fr_FR.UTF-8", "fr_FR.utf8"};
    std::string previous = std::setlocale(LC_NUMERIC, nullptr);
    const char *applied = nullptr;
    for (const char *name : candidates) {
        if (std::setlocale(LC_NUMERIC, name) != nullptr) {
            applied = name;
            break;
        }
    }
    if (applied == nullptr)
        GTEST_SKIP() << "no comma-decimal locale installed";

    std::string path = tempPath("sqlpp_kv_locale.txt");
    KvStore store;
    store.putDouble("p", 0.625);
    Status saved = store.save(path);
    KvStore loaded;
    Status reloaded = loaded.load(path);
    auto value = loaded.getDouble("p");
    std::setlocale(LC_NUMERIC, previous.c_str());

    ASSERT_TRUE(saved.isOk());
    ASSERT_TRUE(reloaded.isOk());
    ASSERT_TRUE(value.has_value());
    EXPECT_DOUBLE_EQ(*value, 0.625);
    std::remove(path.c_str());
}

TEST(KvStoreTest, DoubleRoundTripPrecision)
{
    std::string path = tempPath("sqlpp_kv_test3.txt");
    KvStore store;
    double value = 1.0 / 3.0;
    store.putDouble("p", value);
    ASSERT_TRUE(store.save(path).isOk());
    KvStore loaded;
    ASSERT_TRUE(loaded.load(path).isOk());
    EXPECT_DOUBLE_EQ(*loaded.getDouble("p"), value);
    std::remove(path.c_str());
}

} // namespace
} // namespace sqlpp
