/**
 * @file
 * Expression semantics tests, driven through FROM-less SELECTs so the
 * whole pipeline (text -> parse -> plan -> eval) is exercised.
 */
#include <gtest/gtest.h>

#include "engine/database.h"

namespace sqlpp {
namespace {

/** Evaluate a scalar SQL expression and return the single cell. */
Value
evalSql(Database &db, const std::string &expr)
{
    auto result = db.execute("SELECT " + expr);
    EXPECT_TRUE(result.isOk())
        << expr << " -> " << result.status().toString();
    if (!result.isOk())
        return Value::null();
    EXPECT_EQ(result.value().rowCount(), 1u) << expr;
    EXPECT_EQ(result.value().columnCount(), 1u) << expr;
    return result.value().rows()[0][0];
}

Value
evalSql(const std::string &expr)
{
    Database db;
    return evalSql(db, expr);
}

Status
evalError(const std::string &expr, EngineConfig config = {})
{
    Database db(config);
    auto result = db.execute("SELECT " + expr);
    EXPECT_FALSE(result.isOk()) << expr;
    return result.isOk() ? Status::ok() : result.status();
}

TEST(EvalTest, Arithmetic)
{
    EXPECT_EQ(evalSql("1 + 2").asInt(), 3);
    EXPECT_EQ(evalSql("7 - 10").asInt(), -3);
    EXPECT_EQ(evalSql("6 * 7").asInt(), 42);
    EXPECT_EQ(evalSql("7 / 2").asInt(), 3);
    EXPECT_EQ(evalSql("7 % 3").asInt(), 1);
    EXPECT_EQ(evalSql("-7 / 2").asInt(), -3); // trunc toward zero
}

TEST(EvalTest, ArithmeticNullPropagation)
{
    EXPECT_TRUE(evalSql("1 + NULL").isNull());
    EXPECT_TRUE(evalSql("NULL * 3").isNull());
    EXPECT_TRUE(evalSql("-(CAST(NULL AS INTEGER))").isNull());
}

TEST(EvalTest, ArithmeticOverflowErrors)
{
    EXPECT_EQ(evalError("9223372036854775807 + 1").code(),
              ErrorCode::RuntimeError);
    EXPECT_EQ(evalError("(0 - 9223372036854775807 - 1) * (0 - 1)").code(),
              ErrorCode::RuntimeError);
}

TEST(EvalTest, DivisionByZeroBehaviorKnob)
{
    // Default (SQLite-like): NULL.
    EXPECT_TRUE(evalSql("1 / 0").isNull());
    EXPECT_TRUE(evalSql("1 % 0").isNull());
    // Strict dialects raise.
    EngineConfig strict;
    strict.behavior.divZeroIsNull = false;
    EXPECT_EQ(evalError("1 / 0", strict).code(), ErrorCode::RuntimeError);
}

TEST(EvalTest, DynamicCoercionInArithmetic)
{
    EXPECT_EQ(evalSql("'12abc' + 1").asInt(), 13);
    EXPECT_EQ(evalSql("'abc' + 1").asInt(), 1);
    EXPECT_EQ(evalSql("TRUE + TRUE").asInt(), 2);
    EXPECT_EQ(evalSql("'-3' * 2").asInt(), -6);
}

TEST(EvalTest, ComparisonBasics)
{
    EXPECT_TRUE(evalSql("1 < 2").asBool());
    EXPECT_FALSE(evalSql("2 <= 1").asBool());
    EXPECT_TRUE(evalSql("2 >= 2").asBool());
    EXPECT_TRUE(evalSql("1 = 1").asBool());
    EXPECT_TRUE(evalSql("1 <> 2").asBool());
    EXPECT_TRUE(evalSql("1 != 2").asBool());
}

TEST(EvalTest, ComparisonNullIsNull)
{
    EXPECT_TRUE(evalSql("NULL = NULL").isNull());
    EXPECT_TRUE(evalSql("1 < NULL").isNull());
    EXPECT_TRUE(evalSql("NULL <> NULL").isNull());
}

TEST(EvalTest, MixedClassComparison)
{
    // Numeric class sorts before text class (SQLite rule).
    EXPECT_TRUE(evalSql("1 < 'a'").asBool());
    EXPECT_FALSE(evalSql("'a' < 99999").asBool());
    // Cross-class equality is false, not coerced.
    EXPECT_FALSE(evalSql("1 = '1'").asBool());
    EXPECT_TRUE(evalSql("TRUE = 1").asBool()); // same numeric class
}

TEST(EvalTest, NullSafeEquals)
{
    EXPECT_TRUE(evalSql("NULL <=> NULL").asBool());
    EXPECT_FALSE(evalSql("NULL <=> 1").asBool());
    EXPECT_TRUE(evalSql("2 <=> 2").asBool());
    EXPECT_FALSE(evalSql("2 <=> 3").asBool());
}

TEST(EvalTest, IsDistinctFrom)
{
    EXPECT_FALSE(evalSql("NULL IS DISTINCT FROM NULL").asBool());
    EXPECT_TRUE(evalSql("NULL IS DISTINCT FROM 1").asBool());
    EXPECT_TRUE(evalSql("1 IS NOT DISTINCT FROM 1").asBool());
}

TEST(EvalTest, ThreeValuedLogic)
{
    EXPECT_TRUE(evalSql("NULL AND TRUE").isNull());
    EXPECT_FALSE(evalSql("NULL AND FALSE").asBool());
    EXPECT_TRUE(evalSql("NULL OR TRUE").asBool());
    EXPECT_TRUE(evalSql("NULL OR FALSE").isNull());
    EXPECT_TRUE(evalSql("NOT NULL").isNull());
    EXPECT_FALSE(evalSql("NOT TRUE").asBool());
    EXPECT_TRUE(evalSql("NOT FALSE").asBool());
}

TEST(EvalTest, IsNullFamily)
{
    EXPECT_TRUE(evalSql("NULL IS NULL").asBool());
    EXPECT_FALSE(evalSql("1 IS NULL").asBool());
    EXPECT_TRUE(evalSql("1 IS NOT NULL").asBool());
    EXPECT_TRUE(evalSql("TRUE IS TRUE").asBool());
    EXPECT_FALSE(evalSql("NULL IS TRUE").asBool());
    EXPECT_FALSE(evalSql("NULL IS FALSE").asBool());
    EXPECT_TRUE(evalSql("NULL IS NOT TRUE").asBool());
    EXPECT_TRUE(evalSql("FALSE IS NOT TRUE").asBool());
}

TEST(EvalTest, Bitwise)
{
    EXPECT_EQ(evalSql("5 & 3").asInt(), 1);
    EXPECT_EQ(evalSql("5 | 3").asInt(), 7);
    EXPECT_EQ(evalSql("5 ^ 3").asInt(), 6);
    EXPECT_EQ(evalSql("1 << 4").asInt(), 16);
    EXPECT_EQ(evalSql("16 >> 2").asInt(), 4);
    EXPECT_EQ(evalSql("-8 >> 1").asInt(), -4); // arithmetic shift
    EXPECT_EQ(evalSql("~0").asInt(), -1);
    EXPECT_EQ(evalSql("1 << 100").asInt(), 0); // out-of-range count
}

TEST(EvalTest, Concat)
{
    EXPECT_EQ(evalSql("'a' || 'b'").asText(), "ab");
    EXPECT_EQ(evalSql("1 || 2").asText(), "12"); // dynamic render
    EXPECT_TRUE(evalSql("'a' || NULL").isNull());
}

TEST(EvalTest, LikePatterns)
{
    EXPECT_TRUE(evalSql("'hello' LIKE 'h%'").asBool());
    EXPECT_TRUE(evalSql("'hello' LIKE 'h_llo'").asBool());
    EXPECT_FALSE(evalSql("'hello' LIKE 'h_o'").asBool());
    EXPECT_TRUE(evalSql("'HELLO' LIKE 'hello'").asBool()); // ci default
    EXPECT_TRUE(evalSql("'x' NOT LIKE 'y%'").asBool());
    EXPECT_TRUE(evalSql("'' LIKE ''").asBool());
    EXPECT_TRUE(evalSql("'abc' LIKE '%'").asBool());
    EXPECT_TRUE(evalSql("NULL LIKE 'x'").isNull());
}

TEST(EvalTest, GlobPatterns)
{
    EXPECT_TRUE(evalSql("'hello' GLOB 'h*'").asBool());
    EXPECT_FALSE(evalSql("'HELLO' GLOB 'hello'").asBool()); // cs
    EXPECT_TRUE(evalSql("'ab' GLOB '?b'").asBool());
}

TEST(EvalTest, Between)
{
    EXPECT_TRUE(evalSql("2 BETWEEN 1 AND 3").asBool());
    EXPECT_FALSE(evalSql("0 BETWEEN 1 AND 3").asBool());
    EXPECT_TRUE(evalSql("0 NOT BETWEEN 1 AND 3").asBool());
    EXPECT_TRUE(evalSql("2 BETWEEN NULL AND 3").isNull());
    // Short-circuit: below the low bound decides regardless of NULL high.
    EXPECT_FALSE(evalSql("0 BETWEEN 1 AND NULL").asBool());
}

TEST(EvalTest, InList)
{
    EXPECT_TRUE(evalSql("2 IN (1, 2, 3)").asBool());
    EXPECT_FALSE(evalSql("5 IN (1, 2, 3)").asBool());
    EXPECT_TRUE(evalSql("5 NOT IN (1, 2, 3)").asBool());
    // NULL semantics: no match but a NULL present -> NULL.
    EXPECT_TRUE(evalSql("5 IN (1, NULL)").isNull());
    EXPECT_TRUE(evalSql("1 IN (1, NULL)").asBool());
    EXPECT_TRUE(evalSql("5 NOT IN (1, NULL)").isNull());
    EXPECT_TRUE(evalSql("NULL IN (1, 2)").isNull());
}

TEST(EvalTest, CaseSearched)
{
    EXPECT_EQ(evalSql("CASE WHEN 1 < 2 THEN 'a' ELSE 'b' END").asText(),
              "a");
    EXPECT_EQ(evalSql("CASE WHEN 1 > 2 THEN 'a' ELSE 'b' END").asText(),
              "b");
    EXPECT_TRUE(evalSql("CASE WHEN 1 > 2 THEN 'a' END").isNull());
    // NULL condition is not taken.
    EXPECT_EQ(evalSql("CASE WHEN NULL THEN 1 ELSE 2 END").asInt(), 2);
}

TEST(EvalTest, CaseSimple)
{
    EXPECT_EQ(evalSql("CASE 2 WHEN 1 THEN 'x' WHEN 2 THEN 'y' END")
                  .asText(),
              "y");
    // NULL operand never matches a WHEN.
    EXPECT_TRUE(
        evalSql("CASE NULL WHEN NULL THEN 'x' END").isNull());
}

TEST(EvalTest, Cast)
{
    EXPECT_EQ(evalSql("CAST('12abc' AS INTEGER)").asInt(), 12);
    EXPECT_EQ(evalSql("CAST('abc' AS INTEGER)").asInt(), 0);
    EXPECT_EQ(evalSql("CAST(42 AS TEXT)").asText(), "42");
    EXPECT_TRUE(evalSql("CAST(1 AS BOOLEAN)").asBool());
    EXPECT_FALSE(evalSql("CAST(0 AS BOOLEAN)").asBool());
    EXPECT_TRUE(evalSql("CAST(NULL AS TEXT)").isNull());
    EXPECT_EQ(evalSql("CAST(TRUE AS TEXT)").asText(), "TRUE");
}

TEST(EvalTest, UnknownColumnIsSemanticError)
{
    EXPECT_EQ(evalError("no_such_col + 1").code(),
              ErrorCode::SemanticError);
}

TEST(EvalTest, UnknownFunctionIsSemanticError)
{
    EXPECT_EQ(evalError("FROBNICATE(1)").code(), ErrorCode::SemanticError);
}

TEST(EvalTest, WrongArityIsSemanticError)
{
    EXPECT_EQ(evalError("ABS(1, 2)").code(), ErrorCode::SemanticError);
    EXPECT_EQ(evalError("NULLIF(1)").code(), ErrorCode::SemanticError);
}

TEST(EvalTest, AggregateOutsideGroupContext)
{
    // Aggregate in WHERE is a semantic error.
    Database db;
    ASSERT_TRUE(db.execute("CREATE TABLE t0 (c0 INT)").isOk());
    auto result = db.execute("SELECT c0 FROM t0 WHERE SUM(c0) > 1");
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::SemanticError);
}

// ---------------------------------------------------------------------
// Corner-pinning regressions from the batch-executor audit. The
// vectorized kernels (engine/vec_eval.cc) re-implement these exact
// semantics; every case below is simultaneously checked against the
// row evaluator here and against the kernels by the batch differential
// test, so a drift in either implementation trips a named assertion
// instead of a generated-query mismatch.
// ---------------------------------------------------------------------

TEST(EvalTest, NullComparisonChains)
{
    // A comparison against NULL is NULL, and NULL propagates through
    // further comparisons — it never collapses to false mid-chain.
    EXPECT_TRUE(evalSql("(NULL = NULL)").isNull());
    EXPECT_TRUE(evalSql("(1 = NULL) = (1 = 1)").isNull());
    EXPECT_TRUE(evalSql("NOT (1 < NULL)").isNull());
    // Kleene logic decides when it can, stays NULL when it cannot.
    EXPECT_FALSE(evalSql("(1 = NULL) AND (1 = 2)").asBool());
    EXPECT_TRUE(evalSql("(1 = NULL) OR (1 = 1)").asBool());
    EXPECT_TRUE(evalSql("(1 = NULL) AND (1 = 1)").isNull());
    EXPECT_TRUE(evalSql("(1 = NULL) OR (1 = 2)").isNull());
    // Null-safe operators are total even on two NULLs.
    EXPECT_TRUE(evalSql("NULL <=> NULL").asBool());
    EXPECT_FALSE(evalSql("1 <=> NULL").asBool());
    EXPECT_FALSE(evalSql("NULL IS DISTINCT FROM NULL").asBool());
    EXPECT_TRUE(evalSql("NULL IS NOT DISTINCT FROM NULL").asBool());
}

TEST(EvalTest, TextToNumericBoundaries)
{
    // Affinity parsing saturates instead of erroring, and INT64_MIN's
    // magnitude — one past INT64_MAX — is reached *via* saturation.
    EXPECT_EQ(evalSql("CAST('9223372036854775807' AS INTEGER)").asInt(),
              INT64_MAX);
    EXPECT_EQ(evalSql("CAST('9223372036854775808' AS INTEGER)").asInt(),
              INT64_MAX); // saturates
    EXPECT_EQ(
        evalSql("CAST('-9223372036854775808' AS INTEGER)").asInt(),
        INT64_MIN);
    EXPECT_EQ(
        evalSql("CAST('-99999999999999999999' AS INTEGER)").asInt(),
        INT64_MIN); // saturates
    // Leading whitespace and sign are consumed; parsing stops at the
    // first non-digit; no digits at all means 0.
    EXPECT_EQ(evalSql("CAST('  42abc' AS INTEGER)").asInt(), 42);
    EXPECT_EQ(evalSql("CAST('+7' AS INTEGER)").asInt(), 7);
    EXPECT_EQ(evalSql("CAST('abc' AS INTEGER)").asInt(), 0);
    EXPECT_EQ(evalSql("CAST('' AS INTEGER)").asInt(), 0);
    EXPECT_EQ(evalSql("CAST('-' AS INTEGER)").asInt(), 0);
}

TEST(EvalTest, Int64MinArithmeticEdges)
{
    // INT64_MIN / -1 overflows (no representable positive); the
    // matching modulo is exactly 0, not an error.
    const char *min_expr = "(0 - 9223372036854775807 - 1)";
    EXPECT_EQ(
        evalError(std::string(min_expr) + " / (0 - 1)").code(),
        ErrorCode::RuntimeError);
    EXPECT_EQ(evalSql(std::string(min_expr) + " % (0 - 1)").asInt(), 0);
    EXPECT_EQ(evalError("-" + std::string(min_expr)).code(),
              ErrorCode::RuntimeError);
}

TEST(EvalTest, ShiftCountEdges)
{
    // Out-of-range shift counts (negative, or >= 64) yield 0 in both
    // directions; in-range right shift is arithmetic.
    EXPECT_EQ(evalSql("1 << 63").asInt(), INT64_MIN);
    EXPECT_EQ(evalSql("1 << 64").asInt(), 0);
    EXPECT_EQ(evalSql("1 << (0 - 1)").asInt(), 0);
    EXPECT_EQ(evalSql("1 >> 64").asInt(), 0);
    EXPECT_EQ(evalSql("(0 - 8) >> 1").asInt(), -4); // arithmetic
    EXPECT_TRUE(evalSql("1 << NULL").isNull());
}

TEST(EvalTest, LikeCorners)
{
    // '_' matches exactly one character — never zero — and the empty
    // string is matched only by all-'%' patterns.
    EXPECT_FALSE(evalSql("'' LIKE '_'").asBool());
    EXPECT_TRUE(evalSql("'' LIKE '%%'").asBool());
    EXPECT_FALSE(evalSql("'ab' LIKE 'a'").asBool());
    EXPECT_TRUE(evalSql("'ab' LIKE 'a_'").asBool());
    // Backslash is an ordinary character (the grammar has no ESCAPE
    // clause), so it must match itself, case-insensitively around it.
    EXPECT_TRUE(evalSql("'a\\B' LIKE 'A\\b'").asBool());
    // A NULL pattern poisons the match just like a NULL operand.
    EXPECT_TRUE(evalSql("'x' LIKE NULL").isNull());
    EXPECT_TRUE(evalSql("NULL NOT LIKE 'x'").isNull());
}

TEST(EvalTest, BetweenDecidesAgainstNullBounds)
{
    // Kleene AND inside BETWEEN: a decided-false side wins over a NULL
    // side from either direction, and NOT BETWEEN negates the whole
    // three-valued result (NULL stays NULL).
    EXPECT_FALSE(evalSql("5 BETWEEN NULL AND 2").asBool());
    EXPECT_TRUE(evalSql("5 NOT BETWEEN NULL AND 2").asBool());
    EXPECT_TRUE(evalSql("2 NOT BETWEEN NULL AND 3").isNull());
    EXPECT_TRUE(evalSql("NULL BETWEEN 1 AND 2").isNull());
    EXPECT_TRUE(evalSql("NULL NOT BETWEEN 1 AND 2").isNull());
}

TEST(EvalTest, MixedClassComparisonOrdersNumericFirst)
{
    // SQLite's class order: every numeric sorts before every text, so
    // cross-class comparisons decide on class, not content.
    EXPECT_TRUE(evalSql("1 < 'abc'").asBool());
    EXPECT_TRUE(evalSql("'abc' > 9223372036854775807").asBool());
    EXPECT_FALSE(evalSql("'1' = 1").asBool());
    // Boolean belongs to the numeric class.
    EXPECT_TRUE(evalSql("(1 = 1) = 1").asBool());
    EXPECT_TRUE(evalSql("(1 = 2) < 'a'").asBool());
}

} // namespace
} // namespace sqlpp
