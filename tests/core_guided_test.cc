/**
 * @file
 * Guided-generation tests: the bandit must be deterministic (same salt
 * and pull history → same arm sequence, ties broken by arm index),
 * numerically bulletproof (no NaN/Inf at 0 pulls or UINT64-scale
 * counters), and strictly subordinate to validity feedback (a
 * suppressed feature is never selected, no matter its reward history).
 * The campaign-level regression pins that budget-truncated statements
 * earn zero novelty reward.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/campaign.h"
#include "core/guidance.h"
#include "util/rng.h"

namespace sqlpp {
namespace {

std::vector<std::string>
threeArms()
{
    return {"RULE_TEST_A", "RULE_TEST_B", "RULE_TEST_C"};
}

TEST(GuidanceModeTest, NamesRoundTrip)
{
    for (GuidanceMode mode : {GuidanceMode::Off, GuidanceMode::Ucb,
                              GuidanceMode::Thompson}) {
        GuidanceMode parsed = GuidanceMode::Off;
        ASSERT_TRUE(parseGuidanceMode(guidanceModeName(mode), parsed));
        EXPECT_EQ(parsed, mode);
    }
    GuidanceMode parsed = GuidanceMode::Off;
    EXPECT_TRUE(parseGuidanceMode("UCB", parsed)); // case-insensitive
    EXPECT_EQ(parsed, GuidanceMode::Ucb);
    EXPECT_FALSE(parseGuidanceMode("epsilon-greedy", parsed));
}

TEST(GuidanceScoreTest, UcbScoreIsFiniteOver500RandomizedTrials)
{
    // Property pin: pure arithmetic, finite for every counter value —
    // including the unpulled arm (pulls == 0) and counters at the
    // UINT64 scale, where naive mean/log math overflows or divides by
    // zero.
    const uint64_t kHuge = std::numeric_limits<uint64_t>::max();
    Rng rng(2026);
    for (int trial = 0; trial < 500; ++trial) {
        uint64_t pulls = 0;
        uint64_t total = 0;
        switch (trial % 4) {
        case 0:
            pulls = rng.below(100);
            total = pulls + rng.below(1000);
            break;
        case 1:
            pulls = 0;
            total = rng.below(10);
            break;
        case 2:
            pulls = kHuge - rng.below(3);
            total = kHuge;
            break;
        default:
            pulls = rng.next64();
            total = rng.next64();
            break;
        }
        uint64_t rewarded = pulls == 0 ? 0
                            : pulls == kHuge
                                ? rng.next64()
                                : rng.next64() % (pulls + 1);
        double exploration = (trial % 7) * 0.5;
        double score =
            GuidedSelector::ucbScore(pulls, rewarded, total, exploration);
        ASSERT_TRUE(std::isfinite(score))
            << "pulls=" << pulls << " rewarded=" << rewarded
            << " total=" << total << " c=" << exploration;
        ASSERT_GE(score, 0.0);
    }
}

TEST(GuidanceScoreTest, ThompsonSampleIsFiniteBoundedAndDeterministic)
{
    const uint64_t kHuge = std::numeric_limits<uint64_t>::max();
    Rng rng(4052);
    for (int trial = 0; trial < 500; ++trial) {
        uint64_t pulls = trial % 3 == 0 ? 0 : rng.next64();
        // Deliberately allow rewarded > pulls (a merged checkpoint from
        // a hostile or buggy producer): the draw must stay bounded.
        uint64_t rewarded = trial % 5 == 0 ? kHuge : rng.next64();
        uint64_t salt = rng.next64();
        uint64_t sequence = rng.next64();
        std::string arm = "RULE_TRIAL_" + std::to_string(trial % 17);
        double draw = GuidedSelector::thompsonSample(pulls, rewarded,
                                                     salt, sequence, arm);
        ASSERT_TRUE(std::isfinite(draw));
        ASSERT_GE(draw, 0.0);
        ASSERT_LE(draw, 1.0);
        // Pure function of its inputs: same tuple, same draw.
        ASSERT_EQ(draw, GuidedSelector::thompsonSample(
                            pulls, rewarded, salt, sequence, arm));
    }
}

TEST(GuidanceScoreTest, ThompsonDrawsVaryAcrossSequenceAndSalt)
{
    // Not a randomness test — just a guard that the draw actually
    // depends on the sequence number and salt (a constant function
    // would trivially pass the determinism pin).
    std::vector<double> draws;
    for (uint64_t sequence = 0; sequence < 32; ++sequence)
        draws.push_back(GuidedSelector::thompsonSample(
            10, 5, /*salt=*/77, sequence, "RULE_TEST_A"));
    std::vector<double> sorted = draws;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()),
                 sorted.end());
    EXPECT_GT(sorted.size(), 16u) << "draws barely vary with sequence";
    EXPECT_NE(GuidedSelector::thompsonSample(10, 5, 1, 0, "RULE_TEST_A"),
              GuidedSelector::thompsonSample(10, 5, 2, 0, "RULE_TEST_A"));
}

TEST(GuidedSelectorTest, UnpulledArmsAreVisitedInIndexOrder)
{
    FeatureRegistry registry;
    FeedbackTracker tracker;
    GuidanceConfig config;
    config.mode = GuidanceMode::Ucb;
    GuidedSelector selector(config, tracker, registry);
    std::vector<std::string> arms = threeArms();
    EXPECT_EQ(selector.choose(arms), 0u);
    EXPECT_EQ(selector.choose(arms), 1u);
    EXPECT_EQ(selector.choose(arms), 2u);
    EXPECT_EQ(selector.selections(), 3u);
}

TEST(GuidedSelectorTest, TiesBreakTowardTheLowestArmIndex)
{
    // After one unrewarded pull each, every arm has the identical UCB
    // score; the strict `>` comparison must keep the first candidate.
    FeatureRegistry registry;
    FeedbackTracker tracker;
    GuidanceConfig config;
    config.mode = GuidanceMode::Ucb;
    GuidedSelector selector(config, tracker, registry);
    std::vector<std::string> arms = threeArms();
    for (size_t i = 0; i < arms.size(); ++i)
        (void)selector.choose(arms);
    EXPECT_EQ(selector.choose(arms), 0u);
}

TEST(GuidedSelectorTest, UcbPrefersTheRewardedArm)
{
    FeatureRegistry registry;
    FeedbackTracker tracker;
    GuidanceConfig config;
    config.mode = GuidanceMode::Ucb;
    config.exploration = 0.25; // mostly exploit
    GuidedSelector selector(config, tracker, registry);
    std::vector<std::string> arms = threeArms();
    for (size_t i = 0; i < arms.size(); ++i) {
        FeatureId chosen = 0;
        size_t index = selector.choose(arms, &chosen);
        if (index == 1)
            selector.reward({chosen}, /*novelty=*/3);
    }
    size_t wins = 0;
    for (int round = 0; round < 20; ++round) {
        FeatureId chosen = 0;
        size_t index = selector.choose(arms, &chosen);
        if (index == 1) {
            ++wins;
            selector.reward({chosen}, 1);
        }
    }
    EXPECT_GT(wins, 10u);
}

TEST(GuidedSelectorTest, SameSaltAndHistoryReproduceTheArmSequence)
{
    for (GuidanceMode mode : {GuidanceMode::Ucb, GuidanceMode::Thompson}) {
        auto runSequence = [mode](uint64_t salt) {
            FeatureRegistry registry;
            FeedbackTracker tracker;
            GuidanceConfig config;
            config.mode = mode;
            config.salt = salt;
            GuidedSelector selector(config, tracker, registry);
            std::vector<std::string> arms = threeArms();
            std::vector<size_t> sequence;
            for (int round = 0; round < 200; ++round) {
                FeatureId chosen = 0;
                size_t index = selector.choose(arms, &chosen);
                sequence.push_back(index);
                // Deterministic reward pattern tied to the history.
                if ((round % 5) == static_cast<int>(index))
                    selector.reward({chosen}, 1);
            }
            return sequence;
        };
        EXPECT_EQ(runSequence(11), runSequence(11))
            << guidanceModeName(mode);
    }
    // Distinct salts explore distinct Thompson trajectories.
    auto thompson = [](uint64_t salt) {
        FeatureRegistry registry;
        FeedbackTracker tracker;
        GuidanceConfig config;
        config.mode = GuidanceMode::Thompson;
        config.salt = salt;
        GuidedSelector selector(config, tracker, registry);
        std::vector<std::string> arms = threeArms();
        std::vector<size_t> sequence;
        for (int round = 0; round < 200; ++round)
            sequence.push_back(selector.choose(arms));
        return sequence;
    };
    EXPECT_NE(thompson(11), thompson(12));
}

TEST(GuidedSelectorTest, RewardAdvancesAtMostOncePerPull)
{
    FeatureRegistry registry;
    FeedbackTracker tracker;
    GuidanceConfig config;
    config.mode = GuidanceMode::Ucb;
    GuidedSelector selector(config, tracker, registry);
    std::vector<std::string> arms = threeArms();
    FeatureId chosen = 0;
    (void)selector.choose(arms, &chosen);

    selector.reward({chosen}, /*novelty=*/0); // zero novelty: no credit
    EXPECT_EQ(tracker.stats(chosen).guidedRewarded, 0u);

    selector.reward({chosen}, /*novelty=*/40); // large novelty: one credit
    EXPECT_EQ(tracker.stats(chosen).guidedRewarded, 1u);
    EXPECT_LE(tracker.stats(chosen).guidedRewarded,
              tracker.stats(chosen).guidedPulls);
}

TEST(GuidedSelectorTest, GuidanceNeverBypassesSuppression)
{
    for (GuidanceMode mode : {GuidanceMode::Ucb, GuidanceMode::Thompson}) {
        FeatureRegistry registry;
        FeedbackTracker tracker;
        GuidanceConfig config;
        config.mode = mode;
        GuidedSelector selector(config, tracker, registry);
        std::vector<std::string> arms = threeArms();

        // Make arm B the bandit's favorite: pull each arm once, then
        // shower B with rewards.
        for (size_t i = 0; i < arms.size(); ++i) {
            FeatureId chosen = 0;
            size_t index = selector.choose(arms, &chosen);
            selector.reward({chosen}, index == 1 ? 1 : 0);
        }
        FeatureId favored = registry.find(arms[1]);
        ASSERT_NE(favored, FeatureId(-1));

        // Now the validity tracker learns the dialect rejects B.
        for (int i = 0; i < 100; ++i)
            tracker.record({favored}, /*success=*/false,
                           /*is_query=*/true);
        tracker.updateNow();
        ASSERT_FALSE(tracker.shouldGenerate(favored));

        uint64_t pulls_before = tracker.stats(favored).guidedPulls;
        for (int round = 0; round < 100; ++round) {
            FeatureId chosen = 0;
            size_t index = selector.choose(arms, &chosen);
            EXPECT_NE(index, 1u) << guidanceModeName(mode);
            EXPECT_NE(chosen, favored) << guidanceModeName(mode);
        }
        // Suppressed arms are excluded outright, not merely outscored.
        EXPECT_EQ(tracker.stats(favored).guidedPulls, pulls_before);
    }
}

TEST(GuidedSelectorTest, AllSuppressedArmsReturnUnpulled)
{
    FeatureRegistry registry;
    FeedbackTracker tracker;
    GuidanceConfig config;
    config.mode = GuidanceMode::Ucb;
    GuidedSelector selector(config, tracker, registry);
    std::vector<std::string> arms = threeArms();
    for (const std::string &arm : arms) {
        FeatureId id = registry.intern(arm, FeatureKind::Property);
        for (int i = 0; i < 100; ++i)
            tracker.record({id}, false, true);
    }
    tracker.updateNow();

    // The selector hands back index 0 but records no pull: the
    // generator's own suppression gate rejects the construct next, and
    // a rejected construct must not look like an explored arm.
    EXPECT_EQ(selector.choose(arms), 0u);
    EXPECT_EQ(tracker.stats(registry.find(arms[0])).guidedPulls, 0u);
}

TEST(GuidedCampaignTest, GuidedRunsAreDeterministic)
{
    auto run = [](GuidanceMode mode) {
        CampaignConfig config;
        config.dialect = "sqlite-like";
        config.seed = 7;
        config.checks = 80;
        config.setupStatements = 20;
        config.oracles = {"TLP"};
        config.guidance.mode = mode;
        CampaignRunner runner(config);
        return runner.run();
    };
    for (GuidanceMode mode : {GuidanceMode::Ucb, GuidanceMode::Thompson})
        EXPECT_TRUE(run(mode) == run(mode)) << guidanceModeName(mode);
}

TEST(GuidedCampaignTest, BudgetTruncatedStatementsEarnNoReward)
{
    // Regression: a statement cut short by the execution budget must
    // contribute zero novelty reward — truncated execution can
    // fabricate "new" plans and probes that no complete run would
    // produce. With a one-step budget every scan is cut short, so a
    // fault-free campaign must end with every arm's reward at zero
    // even though the bandit pulled arms on every generated shape.
    CampaignConfig config;
    config.dialect = "sqlite-like";
    config.seed = 7;
    config.checks = 60;
    config.setupStatements = 20;
    config.oracles = {"TLP"};
    config.guidance.mode = GuidanceMode::Ucb;
    config.budget.maxSteps = 1;
    CampaignRunner runner(config);
    CampaignStats stats = runner.run();
    ASSERT_GT(stats.resourceErrors, 0u);

    const FeedbackTracker &tracker = runner.feedback();
    const FeatureRegistry &registry = runner.registry();
    uint64_t pulls = 0;
    uint64_t rewarded = 0;
    for (FeatureId id = 0; id < registry.size(); ++id) {
        pulls += tracker.stats(id).guidedPulls;
        rewarded += tracker.stats(id).guidedRewarded;
    }
    EXPECT_GT(pulls, 0u);
    EXPECT_EQ(rewarded, 0u);
}

TEST(GuidedCampaignTest, GuidedFindsMorePlansThanAdaptive)
{
    // The point of the whole subsystem: at an identical statement
    // budget and seed, chasing plan novelty must surface strictly more
    // unique plan fingerprints than the unguided adaptive generator.
    auto plans = [](GuidanceMode mode) {
        CampaignConfig config;
        config.dialect = "sqlite-like";
        config.seed = 7;
        config.checks = 400;
        config.oracles = {"TLP"};
        config.guidance.mode = mode;
        CampaignRunner runner(config);
        return runner.run().planFingerprints.size();
    };
    size_t adaptive = plans(GuidanceMode::Off);
    EXPECT_GT(plans(GuidanceMode::Ucb), adaptive);
    EXPECT_GT(plans(GuidanceMode::Thompson), adaptive);
}

} // namespace
} // namespace sqlpp
