/**
 * @file
 * Engine differential self-check: the optimized and reference SELECT
 * pipelines must agree on a *fault-free* engine.
 *
 * The platform's oracles (TLP, NoREC) hunt for disagreements the
 * injected FaultSet plants; this test is the control experiment. It
 * drives the adaptive generator over hundreds of deterministic seeds
 * against a postgres-like behaviour profile with every fault cleared,
 * and executes each generated SELECT through both pipelines. Any
 * result-multiset mismatch here is a genuine engine bug — a false
 * positive factory for every oracle — so the test demands zero.
 */
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/feedback.h"
#include "core/generator.h"
#include "dialect/profile.h"
#include "engine/database.h"
#include "parser/parser.h"
#include "util/status.h"

namespace sqlpp {
namespace {

constexpr size_t kSeeds = 200;
constexpr size_t kSetupStatements = 10;
constexpr size_t kSelectsPerSeed = 6;
/**
 * Both pipelines execute under the same per-statement budget, but they
 * spend it differently (the reference plan materializes bigger
 * intermediates), so a budget error on either side skips the pair.
 * Everything else must match: same rows or same error class.
 */
bool
isBudgetSkip(const Status &status)
{
    return !status.isOk() &&
           status.code() == ErrorCode::BudgetExhausted;
}

TEST(EngineDifferentialTest, OptimizedMatchesReferenceOnFaultFreeEngine)
{
    const DialectProfile *profile = findDialect("postgres-like");
    ASSERT_NE(profile, nullptr);

    size_t selects_generated = 0;
    size_t pairs_compared = 0;
    size_t pairs_skipped = 0;

    for (size_t seed = 1; seed <= kSeeds; ++seed) {
        EngineConfig engine_config;
        engine_config.behavior = profile->behavior;
        engine_config.faults = FaultSet(); // fault-free: ground truth
        Database db(engine_config);

        FeatureRegistry registry;
        OpenGate gate;
        SchemaModel model;
        GeneratorConfig generator_config;
        generator_config.seed = seed * 0x9e3779b97f4a7c15ULL + 1;
        AdaptiveGenerator generator(generator_config, registry, gate,
                                    model);

        for (size_t i = 0; i < kSetupStatements; ++i) {
            GeneratedStatement stmt =
                generator.generateSetupStatement();
            auto result = db.execute(stmt.text);
            generator.noteExecution(stmt, result.isOk());
        }

        for (size_t i = 0; i < kSelectsPerSeed; ++i) {
            GeneratedStatement stmt = generator.generateSelect();
            ++selects_generated;
            auto parsed = parseStatement(stmt.text);
            ASSERT_TRUE(parsed.isOk())
                << "generator emitted unparseable SQL (seed " << seed
                << "): " << stmt.text;

            auto optimized =
                db.executeStmt(*parsed.value(), ExecMode::Optimized);
            auto reference =
                db.executeStmt(*parsed.value(), ExecMode::Reference);

            if (isBudgetSkip(optimized.status()) ||
                isBudgetSkip(reference.status())) {
                ++pairs_skipped;
                continue;
            }
            if (!optimized.isOk() || !reference.isOk()) {
                // A fault-free engine must fail identically through
                // both pipelines: same statement, same error class.
                EXPECT_FALSE(optimized.isOk())
                    << "reference failed but optimized succeeded "
                       "(seed "
                    << seed << "): " << stmt.text << "\n  reference: "
                    << reference.status().toString();
                EXPECT_FALSE(reference.isOk())
                    << "optimized failed but reference succeeded "
                       "(seed "
                    << seed << "): " << stmt.text << "\n  optimized: "
                    << optimized.status().toString();
                if (!optimized.isOk() && !reference.isOk()) {
                    EXPECT_EQ(optimized.status().code(),
                              reference.status().code())
                        << "error classes diverge (seed " << seed
                        << "): " << stmt.text;
                }
                ++pairs_compared;
                continue;
            }
            EXPECT_TRUE(optimized.value().sameRowMultiset(
                reference.value()))
                << "result multisets diverge (seed " << seed
                << "): " << stmt.text << "\noptimized:\n"
                << optimized.value().toString() << "reference:\n"
                << reference.value().toString();
            ++pairs_compared;
        }
    }

    // The control experiment is meaningless if skips eat the corpus;
    // demand that the vast majority of generated SELECTs really were
    // compared end to end.
    EXPECT_EQ(selects_generated, kSeeds * kSelectsPerSeed);
    EXPECT_GE(pairs_compared, (selects_generated * 9) / 10)
        << "too many budget skips: " << pairs_skipped;
}

} // namespace
} // namespace sqlpp
