/**
 * @file
 * StatusServer tests: request parsing, routing, concurrent clients,
 * lifecycle, and the SQLPP_STATUS=OFF stub contract.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/status_server.h"

namespace sqlpp {
namespace {

TEST(HttpRequestTest, QueryU64ParsesAndFallsBack)
{
    HttpRequest request;
    request.query["since"] = "1024";
    request.query["bad"] = "12x";
    request.query["empty"] = "";
    EXPECT_EQ(request.queryU64("since", 7), 1024u);
    EXPECT_EQ(request.queryU64("bad", 7), 7u);
    EXPECT_EQ(request.queryU64("empty", 7), 7u);
    EXPECT_EQ(request.queryU64("absent", 7), 7u);
}

#ifdef SQLPP_NO_STATUS

TEST(StatusServerTest, CompiledOutStartIsUnsupported)
{
    StatusServer server;
    server.handle("/status", [](const HttpRequest &) {
        return HttpResponse{};
    });
    Status status = server.start(0);
    EXPECT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), ErrorCode::Unsupported);
    EXPECT_FALSE(server.running());
    EXPECT_EQ(server.port(), 0u);
    server.stop(); // must stay a harmless no-op
}

#else // SQLPP_NO_STATUS

/** Send a raw request string and return the full raw response. */
std::string
rawRequest(uint16_t port, const std::string &request)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }
    (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
    std::string raw;
    char buffer[4096];
    ssize_t n;
    while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0)
        raw.append(buffer, static_cast<size_t>(n));
    ::close(fd);
    return raw;
}

TEST(StatusServerTest, ServesRegisteredHandler)
{
    StatusServer server;
    server.handle("/status", [](const HttpRequest &request) {
        HttpResponse response;
        response.body = "since=" + std::to_string(
            request.queryU64("since", 0));
        return response;
    });
    ASSERT_TRUE(server.start(0).isOk());
    ASSERT_NE(server.port(), 0u);
    EXPECT_TRUE(server.running());

    std::string body;
    int http_status = 0;
    ASSERT_TRUE(httpGetLocal(server.port(), "/status?since=42", &body,
                             &http_status)
                    .isOk());
    EXPECT_EQ(http_status, 200);
    EXPECT_EQ(body, "since=42");
    EXPECT_GE(server.requestsServed(), 1u);
    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(StatusServerTest, UnknownPathIs404)
{
    StatusServer server;
    server.handle("/status", [](const HttpRequest &) {
        return HttpResponse{};
    });
    ASSERT_TRUE(server.start(0).isOk());
    std::string body;
    int http_status = 0;
    ASSERT_TRUE(httpGetLocal(server.port(), "/nope", &body,
                             &http_status)
                    .isOk());
    EXPECT_EQ(http_status, 404);
    server.stop();
}

TEST(StatusServerTest, NonGetIs405AndGarbageIs400)
{
    StatusServer server;
    server.handle("/status", [](const HttpRequest &) {
        return HttpResponse{};
    });
    ASSERT_TRUE(server.start(0).isOk());
    std::string post = rawRequest(
        server.port(), "POST /status HTTP/1.0\r\n\r\n");
    EXPECT_NE(post.find("405"), std::string::npos) << post;
    std::string garbage = rawRequest(server.port(), "garbage\r\n\r\n");
    EXPECT_NE(garbage.find("400"), std::string::npos) << garbage;
    server.stop();
}

TEST(StatusServerTest, StopIsIdempotentAndRestartable)
{
    StatusServer server;
    server.handle("/ping", [](const HttpRequest &) {
        HttpResponse response;
        response.body = "pong";
        return response;
    });
    ASSERT_TRUE(server.start(0).isOk());
    server.stop();
    server.stop();
    EXPECT_FALSE(server.running());
    // A stopped server can be started again (fresh ephemeral port).
    ASSERT_TRUE(server.start(0).isOk());
    std::string body;
    ASSERT_TRUE(
        httpGetLocal(server.port(), "/ping", &body, nullptr).isOk());
    EXPECT_EQ(body, "pong");
    server.stop();
}

TEST(StatusServerTest, SecondStartWhileRunningFails)
{
    StatusServer server;
    ASSERT_TRUE(server.start(0).isOk());
    EXPECT_FALSE(server.start(0).isOk());
    server.stop();
}

TEST(StatusServerTest, ConcurrentClientsAllServed)
{
    std::atomic<uint64_t> handled{0};
    StatusServer server;
    server.handle("/hit", [&handled](const HttpRequest &) {
        handled.fetch_add(1);
        HttpResponse response;
        response.body = "ok";
        return response;
    });
    ASSERT_TRUE(server.start(0).isOk());

    constexpr size_t kThreads = 8;
    constexpr size_t kRequests = 25;
    std::atomic<uint64_t> succeeded{0};
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (size_t i = 0; i < kRequests; ++i) {
                std::string body;
                int http_status = 0;
                if (httpGetLocal(server.port(), "/hit", &body,
                                 &http_status)
                        .isOk() &&
                    http_status == 200 && body == "ok")
                    succeeded.fetch_add(1);
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(succeeded.load(), kThreads * kRequests);
    EXPECT_EQ(handled.load(), kThreads * kRequests);
    EXPECT_EQ(server.requestsServed(), kThreads * kRequests);
    server.stop();
}

#endif // SQLPP_NO_STATUS

} // namespace
} // namespace sqlpp
