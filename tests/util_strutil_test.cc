/**
 * @file
 * Unit tests for string helpers.
 */
#include <gtest/gtest.h>

#include "util/strutil.h"

namespace sqlpp {
namespace {

TEST(StrUtilTest, CaseConversion)
{
    EXPECT_EQ(toUpper("select * FROM t0"), "SELECT * FROM T0");
    EXPECT_EQ(toLower("SeLeCt"), "select");
    EXPECT_EQ(toUpper(""), "");
}

TEST(StrUtilTest, EqualsIgnoreCase)
{
    EXPECT_TRUE(equalsIgnoreCase("select", "SELECT"));
    EXPECT_TRUE(equalsIgnoreCase("", ""));
    EXPECT_FALSE(equalsIgnoreCase("select", "selec"));
    EXPECT_FALSE(equalsIgnoreCase("a", "b"));
}

TEST(StrUtilTest, Join)
{
    EXPECT_EQ(join({}, ", "), "");
    EXPECT_EQ(join({"a"}, ", "), "a");
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StrUtilTest, SplitKeepsEmptyFields)
{
    auto parts = split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(StrUtilTest, Trim)
{
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim("x"), "x");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(StrUtilTest, StartsWith)
{
    EXPECT_TRUE(startsWith("SELECT 1", "SELECT"));
    EXPECT_FALSE(startsWith("SEL", "SELECT"));
    EXPECT_TRUE(startsWith("anything", ""));
}

TEST(StrUtilTest, SqlQuoteEscapesQuotes)
{
    EXPECT_EQ(sqlQuote("hello"), "'hello'");
    EXPECT_EQ(sqlQuote("it's"), "'it''s'");
    EXPECT_EQ(sqlQuote(""), "''");
    EXPECT_EQ(sqlQuote("''"), "''''''");
}

TEST(StrUtilTest, Format)
{
    EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(format("%.2f", 1.005), "1.00");
    EXPECT_EQ(format("empty"), "empty");
}

TEST(StrUtilTest, Fnv1aStableAndSeedSensitive)
{
    EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
    EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
    EXPECT_NE(fnv1a("abc", 1), fnv1a("abc", 2));
}

} // namespace
} // namespace sqlpp
