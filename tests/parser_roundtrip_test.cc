/**
 * @file
 * Parser/printer round-trip property test.
 *
 * The printer's output is the platform's wire format: generated
 * statements, reduced bug reports, and checkpoint payloads all travel
 * as printed SQL and come back through the parser. The property that
 * makes this safe is a one-step fixpoint: parsing printed text and
 * printing it again must reproduce the text exactly. (The generator's
 * raw text may normalize once — parenthesization, literal spelling —
 * but after one print the form is canonical.)
 *
 * The corpus is the adaptive generator itself, swept over seeds and an
 * expression-depth schedule of 1 → 3, so every statement kind and
 * operator the platform can emit passes through the property.
 */
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "core/feedback.h"
#include "core/generator.h"
#include "parser/parser.h"
#include "sqlir/printer.h"

namespace sqlpp {
namespace {

/** print(parse(text)) must be a fixpoint after one iteration. */
void
expectStatementFixpoint(const std::string &text)
{
    auto first = parseStatement(text);
    ASSERT_TRUE(first.isOk())
        << "unparseable: " << text << " — "
        << first.status().toString();
    std::string canonical = printStmt(*first.value());
    auto second = parseStatement(canonical);
    ASSERT_TRUE(second.isOk())
        << "printer emitted unparseable SQL: " << canonical;
    EXPECT_EQ(printStmt(*second.value()), canonical)
        << "not a fixpoint, original: " << text;
}

void
expectExpressionFixpoint(const std::string &text)
{
    auto first = parseExpression(text);
    ASSERT_TRUE(first.isOk())
        << "unparseable: " << text << " — "
        << first.status().toString();
    std::string canonical = printExpr(*first.value());
    auto second = parseExpression(canonical);
    ASSERT_TRUE(second.isOk())
        << "printer emitted unparseable expression: " << canonical;
    EXPECT_EQ(printExpr(*second.value()), canonical)
        << "not a fixpoint, original: " << text;
}

TEST(ParserRoundtripTest, GeneratedStatementsReachFixpoint)
{
    std::set<StmtKind> kinds_seen;
    // Depth schedule 1 → 3: shallow trees exercise the statement
    // skeletons, deep ones the expression grammar's precedence and
    // parenthesization.
    for (int depth = 1; depth <= 3; ++depth) {
        for (uint64_t seed = 1; seed <= 40; ++seed) {
            FeatureRegistry registry;
            OpenGate gate;
            SchemaModel model;
            GeneratorConfig config;
            config.seed = seed + 1000 * depth;
            config.maxDepth = depth;
            config.progressiveDepth = false;
            AdaptiveGenerator generator(config, registry, gate, model);

            for (size_t i = 0; i < 12; ++i) {
                GeneratedStatement stmt =
                    generator.generateSetupStatement();
                kinds_seen.insert(stmt.kind);
                expectStatementFixpoint(stmt.text);
                // Assume success so the model grows and later
                // statements reference the accumulated schema.
                generator.noteExecution(stmt, true);
            }
            for (size_t i = 0; i < 6; ++i) {
                GeneratedStatement stmt = generator.generateSelect();
                kinds_seen.insert(stmt.kind);
                expectStatementFixpoint(stmt.text);
            }
        }
    }
    // The sweep must have covered the generator's statement universe.
    EXPECT_TRUE(kinds_seen.count(StmtKind::CreateTable));
    EXPECT_TRUE(kinds_seen.count(StmtKind::CreateIndex));
    EXPECT_TRUE(kinds_seen.count(StmtKind::Insert));
    EXPECT_TRUE(kinds_seen.count(StmtKind::Select));
}

TEST(ParserRoundtripTest, GeneratedPredicatesReachFixpoint)
{
    for (uint64_t seed = 1; seed <= 60; ++seed) {
        FeatureRegistry registry;
        OpenGate gate;
        SchemaModel model;
        GeneratorConfig config;
        config.seed = seed * 7 + 3;
        AdaptiveGenerator generator(config, registry, gate, model);
        for (size_t i = 0; i < 10; ++i) {
            generator.noteExecution(generator.generateSetupStatement(),
                                    true);
        }
        for (size_t i = 0; i < 5; ++i) {
            auto shape = generator.generateQueryShape();
            if (!shape.has_value())
                continue;
            expectExpressionFixpoint(printExpr(*shape->predicate));
            expectStatementFixpoint(printSelect(*shape->base));
        }
    }
}

TEST(ParserRoundtripTest, HandwrittenCornersReachFixpoint)
{
    // Statement kinds the generator emits rarely or never (DROPs are
    // reducer-only), plus precedence and quoting corners.
    for (const char *text : {
             "DROP TABLE t0",
             "DROP VIEW v0",
             "DROP INDEX i0",
             "CREATE TABLE t9 (c0 INTEGER PRIMARY KEY, c1 TEXT NOT "
             "NULL, c2 BOOLEAN UNIQUE)",
             "CREATE TABLE IF NOT EXISTS t9 (c0 INTEGER)",
             "CREATE UNIQUE INDEX i9 ON t9(c0) WHERE c0 > 0",
             "CREATE VIEW v9 (a, b) AS SELECT c0, c1 FROM t9",
             "INSERT OR IGNORE INTO t9 VALUES (1, 'a', TRUE), (2, "
             "'b''c', FALSE)",
             "ANALYZE",
             "SELECT DISTINCT t9.c0 FROM t9 LEFT JOIN t8 ON t9.c0 = "
             "t8.c0 WHERE NOT (t9.c0 + 1 * 2 < 3) GROUP BY t9.c0 "
             "HAVING COUNT(*) > 1 ORDER BY t9.c0 DESC LIMIT 5 OFFSET "
             "2",
             "SELECT (SELECT MAX(c0) FROM t9) FROM t9 WHERE c0 IN "
             "(SELECT c0 FROM t8)",
         }) {
        expectStatementFixpoint(text);
    }
    for (const char *text : {
             "- 1 + 2 * 3",
             "NOT (c0 IS NULL)",
             "c0 BETWEEN 1 AND 10 AND c1 LIKE 'x%'",
             "(c0 > 1) IS NOT TRUE",
             "~5 | 3 & 1",
             "'it''s' || 'fine'",
         }) {
        expectExpressionFixpoint(text);
    }
}

TEST(ParserRoundtripTest, EetWrapperShapesReachFixpoint)
{
    // Every wrapper shape the EET rewriter emits (core/rewrite.cc)
    // travels as printed SQL inside oracle queries, dossier repro
    // scripts and reduced bug cases — each must be a print∘parse
    // fixpoint, including nesting a wrapper inside another check's
    // rewrite.
    for (const char *text : {
             "(c0 > 1) AND TRUE",                       // and_true
             "(c0 > 1) OR FALSE",                       // or_false
             "NOT (NOT (c0 > 1))",                      // not_not
             "(c1 = 'a') IS TRUE",                      // is_true
             "(c1 = 'a') IS NOT FALSE",                 // is_not_false
             "(c0 > 1) AND ((c0 BETWEEN -2 AND 7) OR " // taut_range
             "(c0 IS NULL))",
             "NOT (NOT ((c0 > 1) AND TRUE))",           // nested
             "((c0 IS NULL) IS TRUE) OR FALSE",
         }) {
        expectExpressionFixpoint(text);
    }
}

TEST(ParserRoundtripTest, Int64BoundaryLiteralsReachFixpoint)
{
    // INT64_MIN prints as -9223372036854775808; its magnitude is out
    // of int64 range on its own, so the lexer defers the range error
    // and the parser folds the `-` + boundary-magnitude pair back into
    // the literal. EET's data-aware tautology conjunct emits scanned
    // column minima/maxima verbatim, which is how these literals reach
    // the wire format.
    for (const char *text : {
             "-9223372036854775808",
             "9223372036854775807",
             "c0 BETWEEN -9223372036854775808 AND 9223372036854775807",
             "(c0 = -9223372036854775808) AND TRUE",
             "- (-9223372036854775808)",
         }) {
        expectExpressionFixpoint(text);
    }

    // Out-of-range magnitudes anywhere else must stay syntax errors,
    // not wrap around silently.
    EXPECT_FALSE(parseExpression("9223372036854775808").isOk());
    EXPECT_FALSE(parseExpression("c0 = 9223372036854775808").isOk());
    EXPECT_FALSE(
        parseStatement("SELECT * FROM t0 LIMIT 9223372036854775808")
            .isOk());
    EXPECT_FALSE(parseStatement("SELECT * FROM t0 LIMIT 1 OFFSET "
                                "9223372036854775808")
                     .isOk());
}

} // namespace
} // namespace sqlpp
