/**
 * @file
 * Unit tests for the campaign flight recorder (util/trace.h): lane
 * scoping, ring overflow accounting, logical ticks, JSONL rendering,
 * and the pinned sqlpp.trace.v1 schema description
 * (tests/golden/trace_schema.txt).
 */
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/trace.h"

namespace sqlpp {
namespace {

class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override { TraceRecorder::instance().reset(); }
    void TearDown() override { TraceRecorder::instance().reset(); }
};

TEST_F(TraceTest, EventTypeNamesAreStable)
{
    EXPECT_STREQ(traceEventTypeName(TraceEventType::StatementExecuted),
                 "statement_executed");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::ErrorClass),
                 "error_class");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::ShardAbandoned),
                 "shard_abandoned");
    // Every type renders a distinct non-"unknown" name.
    std::vector<std::string> names;
    for (size_t i = 0; i < kTraceEventTypes; ++i) {
        std::string name =
            traceEventTypeName(static_cast<TraceEventType>(i));
        EXPECT_NE(name, "unknown");
        for (const std::string &prior : names)
            EXPECT_NE(name, prior);
        names.push_back(name);
    }
}

TEST_F(TraceTest, LaneForShardIndexMapping)
{
    EXPECT_EQ(TraceRecorder::laneForShardIndex(static_cast<size_t>(-1)),
              0u);
    EXPECT_EQ(TraceRecorder::laneForShardIndex(0), 1u);
    EXPECT_EQ(TraceRecorder::laneForShardIndex(7), 8u);
    EXPECT_EQ(TraceRecorder::laneForShardIndex(
                  TraceRecorder::kMaxShards),
              1u);
}

TEST_F(TraceTest, RecordsIntoTheCurrentLane)
{
    TraceRecorder &recorder = TraceRecorder::instance();
    recorder.record(TraceEventType::OracleCheck, "tlp", 1, 2);
    {
        TraceShardScope scope(3, "sqlite-like");
        recorder.record(TraceEventType::BugFound, "norec", 7, 0);
    }
    recorder.record(TraceEventType::OracleCheck, "pqs", 0, 0);

    auto lane0 = recorder.laneEvents(0);
    ASSERT_EQ(lane0.size(), 2u);
    EXPECT_EQ(lane0[0].type, TraceEventType::OracleCheck);
    EXPECT_STREQ(lane0[0].detail, "tlp");
    EXPECT_EQ(lane0[0].a, 1u);
    EXPECT_STREQ(lane0[1].detail, "pqs");

    auto lane3 = recorder.laneEvents(
        TraceRecorder::laneForShardIndex(3));
    ASSERT_EQ(lane3.size(), 1u);
    EXPECT_EQ(lane3[0].type, TraceEventType::BugFound);
    EXPECT_EQ(lane3[0].a, 7u);
    EXPECT_EQ(recorder.laneLabel(TraceRecorder::laneForShardIndex(3)),
              "sqlite-like");
}

TEST_F(TraceTest, ScopesNestAndRestore)
{
    TraceRecorder &recorder = TraceRecorder::instance();
    {
        TraceShardScope outer(1, "outer");
        recorder.record(TraceEventType::ShardStarted, "o", 0, 0);
        {
            TraceShardScope inner(2, "inner");
            recorder.record(TraceEventType::ShardStarted, "i", 0, 0);
        }
        recorder.record(TraceEventType::ShardStarted, "o2", 0, 0);
    }
    EXPECT_EQ(
        recorder.laneEvents(TraceRecorder::laneForShardIndex(1)).size(),
        2u);
    EXPECT_EQ(
        recorder.laneEvents(TraceRecorder::laneForShardIndex(2)).size(),
        1u);
}

TEST_F(TraceTest, TicksStampEventsAndStayPerLane)
{
    TraceRecorder &recorder = TraceRecorder::instance();
    TraceShardScope scope(0, "shard0");
    EXPECT_EQ(recorder.currentTick(), 0u);
    EXPECT_EQ(recorder.bumpTick(), 1u);
    EXPECT_EQ(recorder.bumpTick(), 2u);
    recorder.record(TraceEventType::ErrorClass, "syntax", 0, 0);
    auto events =
        recorder.laneEvents(TraceRecorder::laneForShardIndex(0));
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].tick, 2u);
    {
        TraceShardScope other(1, "shard1");
        // A different lane has its own clock.
        EXPECT_EQ(recorder.currentTick(), 0u);
    }
    EXPECT_EQ(recorder.currentTick(), 2u);
}

TEST_F(TraceTest, RingKeepsTheNewestEventsAndCountsDrops)
{
    TraceRecorder &recorder = TraceRecorder::instance();
    TraceShardScope scope(5, "ring");
    size_t total = TraceRecorder::kRingCapacity + 100;
    for (size_t i = 0; i < total; ++i)
        recorder.record(TraceEventType::StatementExecuted, "", i, 0);
    size_t lane = TraceRecorder::laneForShardIndex(5);
    EXPECT_EQ(recorder.laneRecorded(lane), total);
    auto events = recorder.laneEvents(lane);
    ASSERT_EQ(events.size(), TraceRecorder::kRingCapacity);
    // Oldest retained is event #100; newest is the last recorded.
    EXPECT_EQ(events.front().a, 100u);
    EXPECT_EQ(events.back().a, total - 1);
}

TEST_F(TraceTest, DetailIsTruncatedNotOverflowed)
{
    TraceRecorder &recorder = TraceRecorder::instance();
    std::string longer(2 * TraceEvent::kDetailCapacity, 'x');
    recorder.record(TraceEventType::OracleCheck, longer, 0, 0);
    auto events = recorder.laneEvents(0);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(std::string(events[0].detail),
              std::string(TraceEvent::kDetailCapacity - 1, 'x'));
}

TEST_F(TraceTest, RecentShardEventsReturnsTheTail)
{
    TraceRecorder &recorder = TraceRecorder::instance();
    TraceShardScope scope(9, "tail");
    for (uint64_t i = 0; i < 10; ++i)
        recorder.record(TraceEventType::StatementExecuted, "", i, 0);
    auto tail = recorder.recentShardEvents(9, 3);
    ASSERT_EQ(tail.size(), 3u);
    EXPECT_EQ(tail[0].a, 7u);
    EXPECT_EQ(tail[2].a, 9u);
}

TEST_F(TraceTest, ExportJsonlShapeAndEscaping)
{
    TraceRecorder &recorder = TraceRecorder::instance();
    {
        TraceShardScope scope(0, "quote\"and\\slash");
        recorder.bumpTick();
        recorder.record(TraceEventType::ErrorClass, "syn\ntax", 4, 5);
    }
    std::string jsonl = exportTraceJsonl();
    std::istringstream lines(jsonl);
    std::string header;
    ASSERT_TRUE(std::getline(lines, header));
    EXPECT_NE(header.find("\"schema\": \"sqlpp.trace.v1\""),
              std::string::npos);
    EXPECT_NE(header.find("\"lanes\": 1"), std::string::npos);
    EXPECT_NE(header.find("\"events\": 1"), std::string::npos);
    std::string event;
    ASSERT_TRUE(std::getline(lines, event));
    EXPECT_NE(event.find("\"type\": \"error_class\""),
              std::string::npos);
    EXPECT_NE(event.find("\"detail\": \"syn\\ntax\""),
              std::string::npos);
    EXPECT_NE(event.find("quote\\\"and\\\\slash"), std::string::npos);
    EXPECT_NE(event.find("\"tick\": 1"), std::string::npos);
    EXPECT_NE(event.find("\"a\": 4"), std::string::npos);
    std::string rest;
    EXPECT_FALSE(std::getline(lines, rest)) << "unexpected line: "
                                            << rest;
}

TEST_F(TraceTest, DeltaExportFiltersBySinceTick)
{
    TraceRecorder &recorder = TraceRecorder::instance();
    {
        TraceShardScope scope(0, "delta");
        for (uint64_t i = 1; i <= 3; ++i) {
            recorder.bumpTick();
            recorder.record(TraceEventType::StatementExecuted, "", i,
                            0);
        }
    }
    std::string jsonl = exportTraceDeltaJsonl(1);
    std::istringstream lines(jsonl);
    std::string header;
    ASSERT_TRUE(std::getline(lines, header));
    EXPECT_NE(header.find("\"schema\": \"sqlpp.trace.delta.v1\""),
              std::string::npos)
        << header;
    EXPECT_NE(header.find("\"since\": 1"), std::string::npos);
    // "tick" carries the newest tick seen: the client's next `since`.
    EXPECT_NE(header.find("\"tick\": 3"), std::string::npos);
    EXPECT_NE(header.find("\"events\": 2"), std::string::npos);
    std::string event;
    size_t events = 0;
    while (std::getline(lines, event)) {
        ++events;
        EXPECT_EQ(event.find("\"tick\": 1"), std::string::npos)
            << event;
    }
    EXPECT_EQ(events, 2u);

    // Fully caught up: header only, zero events.
    std::string drained = exportTraceDeltaJsonl(3);
    EXPECT_NE(drained.find("\"events\": 0"), std::string::npos);
    EXPECT_EQ(drained.find("statement_executed"), std::string::npos);
}

TEST_F(TraceTest, DroppedTotalCountsRingOverwrites)
{
    TraceRecorder &recorder = TraceRecorder::instance();
    EXPECT_EQ(traceDroppedTotal(), 0u);
    TraceShardScope scope(5, "ring");
    size_t total = TraceRecorder::kRingCapacity + 100;
    for (size_t i = 0; i < total; ++i)
        recorder.record(TraceEventType::StatementExecuted, "", i, 0);
    EXPECT_EQ(traceDroppedTotal(), 100u);
    recorder.reset();
    EXPECT_EQ(traceDroppedTotal(), 0u);
}

TEST_F(TraceTest, ExportIsDeterministicAcrossLaneCreationOrder)
{
    TraceRecorder &recorder = TraceRecorder::instance();
    auto fill = [&recorder](std::vector<size_t> shard_order) {
        recorder.reset();
        for (size_t shard : shard_order) {
            TraceShardScope scope(shard,
                                  "s" + std::to_string(shard));
            recorder.record(TraceEventType::ShardStarted, "", shard,
                            0);
        }
        return exportTraceJsonl();
    };
    // Lanes render in lane-index order regardless of creation order —
    // the property that makes N-worker exports shard-ordered.
    std::string forwards = fill({0, 1, 2, 3});
    std::string backwards = fill({3, 2, 1, 0});
    EXPECT_EQ(forwards, backwards);
}

TEST_F(TraceTest, ResetClearsEventsTicksAndCounts)
{
    TraceRecorder &recorder = TraceRecorder::instance();
    {
        TraceShardScope scope(2, "reset");
        recorder.bumpTick();
        recorder.record(TraceEventType::BugFound, "tlp", 1, 0);
    }
    recorder.reset();
    size_t lane = TraceRecorder::laneForShardIndex(2);
    EXPECT_EQ(recorder.laneRecorded(lane), 0u);
    EXPECT_TRUE(recorder.laneEvents(lane).empty());
    TraceShardScope scope(2, "reset");
    EXPECT_EQ(recorder.currentTick(), 0u);
}

TEST_F(TraceTest, ConcurrentShardScopesStayIsolated)
{
    TraceRecorder &recorder = TraceRecorder::instance();
    constexpr size_t kThreads = 4;
    constexpr size_t kPerThread = 2000;
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &recorder] {
            TraceShardScope scope(t, "shard" + std::to_string(t));
            for (size_t i = 0; i < kPerThread; ++i) {
                recorder.bumpTick();
                recorder.record(TraceEventType::StatementExecuted, "",
                                i, 0);
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    for (size_t t = 0; t < kThreads; ++t) {
        size_t lane = TraceRecorder::laneForShardIndex(t);
        EXPECT_EQ(recorder.laneRecorded(lane), kPerThread);
        auto events = recorder.laneEvents(lane);
        ASSERT_EQ(events.size(), kPerThread);
        EXPECT_EQ(events.back().a, kPerThread - 1);
        EXPECT_EQ(events.back().tick, kPerThread);
    }
}

TEST_F(TraceTest, SchemaDescriptionMatchesGoldenFile)
{
    std::string rendered = traceSchemaDescription();
    std::string path = std::string(SQLPP_GOLDEN_DIR) +
                       "/trace_schema.txt";

    if (std::getenv("SQLPP_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << rendered;
        GTEST_SKIP() << "golden file regenerated: " << path;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << "; regenerate with SQLPP_UPDATE_GOLDEN=1";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(rendered, golden.str())
        << "sqlpp.trace.v1 schema diverged from "
           "tests/golden/trace_schema.txt; consumers parse these "
           "field names — if the change is deliberate, rerun with "
           "SQLPP_UPDATE_GOLDEN=1 and bump the schema tag";
}

#ifndef SQLPP_NO_TRACE
TEST_F(TraceTest, MacrosRecordWhenCompiledIn)
{
    TraceRecorder &recorder = TraceRecorder::instance();
    SQLPP_TRACE_TICK();
    SQLPP_TRACE_EVENT(OracleCheck, "tlp", 3, 4);
    auto events = recorder.laneEvents(0);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].tick, 1u);
    EXPECT_EQ(events[0].b, 4u);
}
#else
TEST_F(TraceTest, MacrosAreNoOpsWhenCompiledOut)
{
    SQLPP_TRACE_TICK();
    SQLPP_TRACE_EVENT(OracleCheck, "tlp", 3, 4);
    EXPECT_EQ(TraceRecorder::instance().laneRecorded(0), 0u);
}
#endif

} // namespace
} // namespace sqlpp
