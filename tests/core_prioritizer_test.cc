/**
 * @file
 * Bug-prioritizer tests reproducing the paper's Fig. 4 walkthrough.
 */
#include <gtest/gtest.h>

#include "core/prioritizer.h"

namespace sqlpp {
namespace {

TEST(PrioritizerTest, FirstBugIsAlwaysNew)
{
    BugPrioritizer prioritizer;
    EXPECT_TRUE(prioritizer.considerNew({1, 2}));
    EXPECT_EQ(prioritizer.size(), 1u);
}

TEST(PrioritizerTest, SupersetIsDuplicate)
{
    BugPrioritizer prioritizer;
    ASSERT_TRUE(prioritizer.considerNew({1, 2}));
    // {1,2} ⊆ {1,2,3}: duplicate.
    EXPECT_FALSE(prioritizer.considerNew({1, 2, 3}));
    EXPECT_EQ(prioritizer.size(), 1u);
}

TEST(PrioritizerTest, AbsorbPreservesSubsumptionSemantics)
{
    // The scheduler's post-run merge: folding shard B's known sets into
    // shard A's must behave exactly like one prioritizer that saw the
    // concatenated stream.
    BugPrioritizer a;
    ASSERT_TRUE(a.considerNew({1, 2}));

    BugPrioritizer b;
    ASSERT_TRUE(b.considerNew({1, 2, 3}));
    ASSERT_TRUE(b.considerNew({4}));

    // {1,2,3} is subsumed by the already-known {1,2}; {4} is new.
    EXPECT_EQ(a.absorb(b), 1u);
    EXPECT_EQ(a.size(), 2u);
    EXPECT_TRUE(a.isPotentialDuplicate({1, 2, 3}));
    EXPECT_TRUE(a.isPotentialDuplicate({4, 5}));
    EXPECT_FALSE(a.isPotentialDuplicate({5}));
}

TEST(PrioritizerTest, ExactMatchIsDuplicate)
{
    BugPrioritizer prioritizer;
    ASSERT_TRUE(prioritizer.considerNew({4, 5}));
    EXPECT_FALSE(prioritizer.considerNew({4, 5}));
}

TEST(PrioritizerTest, DisjointAndPartialOverlapAreNew)
{
    BugPrioritizer prioritizer;
    ASSERT_TRUE(prioritizer.considerNew({1, 2}));
    EXPECT_TRUE(prioritizer.considerNew({3, 4}));
    // {1,2} is not a subset of {2,3}; {3,4} is not either.
    EXPECT_TRUE(prioritizer.considerNew({2, 3}));
    EXPECT_EQ(prioritizer.size(), 3u);
}

TEST(PrioritizerTest, SubsetOfKnownIsStillNew)
{
    // A *smaller* feature set than a known bug is new (the known set is
    // not a subset of it) — matching the paper's definition exactly.
    BugPrioritizer prioritizer;
    ASSERT_TRUE(prioritizer.considerNew({1, 2, 3}));
    EXPECT_TRUE(prioritizer.considerNew({1, 2}));
    // And now {1,2,3}-shaped cases are duplicates of {1,2}.
    EXPECT_FALSE(prioritizer.considerNew({1, 2, 9}));
}

TEST(PrioritizerTest, PaperFigure4Walkthrough)
{
    // Feature ids: NULLIF=10, !=/<> spellings 11 and 12, IS_NULL=13.
    BugPrioritizer prioritizer;
    // Test case 1: {NULLIF, !=} -> new.
    EXPECT_TRUE(prioritizer.considerNew({10, 11}));
    // Test cases 2 and 3 contain {NULLIF, !=} plus extras -> duplicates.
    EXPECT_FALSE(prioritizer.considerNew({10, 11, 13}));
    EXPECT_FALSE(prioritizer.considerNew({10, 11, 12, 13}));
    // The paper's misclassification example: NULLIF with <> (different
    // spelling) is treated as NEW even if the root cause is the same.
    EXPECT_TRUE(prioritizer.considerNew({10, 12}));
    EXPECT_EQ(prioritizer.size(), 2u);
}

TEST(PrioritizerTest, QueryFormDoesNotRecord)
{
    BugPrioritizer prioritizer;
    ASSERT_TRUE(prioritizer.considerNew({1}));
    EXPECT_TRUE(prioritizer.isPotentialDuplicate({1, 2}));
    EXPECT_FALSE(prioritizer.isPotentialDuplicate({2}));
    EXPECT_EQ(prioritizer.size(), 1u); // unchanged by queries
}

TEST(PrioritizerTest, ClearResets)
{
    BugPrioritizer prioritizer;
    ASSERT_TRUE(prioritizer.considerNew({1}));
    prioritizer.clear();
    EXPECT_EQ(prioritizer.size(), 0u);
    EXPECT_TRUE(prioritizer.considerNew({1, 2}));
}

TEST(PrioritizerTest, EmptySetSubsumesEverything)
{
    BugPrioritizer prioritizer;
    ASSERT_TRUE(prioritizer.considerNew({}));
    // The empty set is a subset of anything: everything else duplicates.
    EXPECT_FALSE(prioritizer.considerNew({1}));
    EXPECT_FALSE(prioritizer.considerNew({1, 2, 3}));
}

TEST(PrioritizerTest, ScalesToManySets)
{
    BugPrioritizer prioritizer;
    size_t added = 0;
    for (FeatureId i = 0; i < 200; ++i) {
        if (prioritizer.considerNew({i, i + 1000}))
            ++added;
    }
    EXPECT_EQ(added, 200u);
    EXPECT_FALSE(prioritizer.considerNew({5, 1005, 77}));
}

} // namespace
} // namespace sqlpp
